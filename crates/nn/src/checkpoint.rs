//! Weight checkpointing: save/load a module's parameters to a simple
//! self-describing binary format (no external serialization deps).
//!
//! Format (little-endian): magic `b"INET"`, format version `u32`,
//! parameter count `u32`, then per parameter: name length `u32`, UTF-8
//! name bytes, rank `u32`, dims (`u64` each), and `f32` data. Version 2
//! appends a second section in the same record format holding module
//! *buffers* — non-trainable state such as `SwitchableBatchNorm` running
//! statistics — so an eval-mode model (and the integer engine prepacked
//! from it) is fully reconstructable from a checkpoint. Version 3 appends
//! a CRC32 (IEEE, reflected) of each section's bytes immediately after
//! the section, so silent corruption — a flipped bit in weight data that
//! still parses — is detected at load time instead of becoming garbage
//! weights. Version 1 (params only) and version 2 (no checksums) files
//! remain readable.

use crate::Module;
use instantnet_tensor::Tensor;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"INET";
const VERSION: u32 = 3;

/// CRC32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) of `bytes`
/// continued from a running `state` (start from [`CRC32_INIT`], finish by
/// inverting). Bitwise — checkpoint I/O is dominated by tensor data reads,
/// not the checksum.
const CRC32_INIT: u32 = 0xFFFF_FFFF;

/// One-shot CRC32 (the checkpoint-v3 polynomial) over `bytes` — the
/// fingerprint the model registry stores per published version, so a
/// served model is always traceable to the exact checkpoint file bytes
/// it came from.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(CRC32_INIT, bytes)
}

fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state ^= u32::from(b);
        for _ in 0..8 {
            let mask = (state & 1).wrapping_neg();
            state = (state >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    state
}

/// `Read` adapter folding every byte it yields into a running CRC32.
struct Crc32Reader<'a, R: Read> {
    inner: &'a mut R,
    state: u32,
}

impl<'a, R: Read> Crc32Reader<'a, R> {
    fn new(inner: &'a mut R) -> Self {
        Crc32Reader {
            inner,
            state: CRC32_INIT,
        }
    }

    fn finish(&self) -> u32 {
        !self.state
    }
}

impl<R: Read> Read for Crc32Reader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.state = crc32_update(self.state, &buf[..n]);
        Ok(n)
    }
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Missing or wrong magic/version header.
    BadHeader,
    /// File data was malformed (truncated, bad UTF-8, absurd sizes).
    Corrupt(&'static str),
    /// A parameter in the file has no counterpart in the module, or the
    /// shapes disagree.
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadHeader => write!(f, "not an InstantNet checkpoint"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
            CheckpointError::Mismatch(name) => write!(f, "parameter mismatch for '{name}'"),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn write_section(w: &mut impl Write, records: &[(String, Tensor)]) -> Result<(), CheckpointError> {
    w.write_all(&(records.len() as u32).to_le_bytes())?;
    for (name, value) in records {
        let name = name.as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let dims = value.dims();
        w.write_all(&(dims.len() as u32).to_le_bytes())?;
        for &d in dims {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for v in value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Saves every parameter and buffer of `module` to `path`.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on filesystem failures.
pub fn save(module: &dyn Module, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let params: Vec<(String, Tensor)> = module
        .params()
        .iter()
        .map(|p| (p.name().to_string(), p.var().value()))
        .collect();
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_section_checksummed(&mut w, &params)?;
    write_section_checksummed(&mut w, &module.buffers())?;
    w.flush()?;
    Ok(())
}

/// Writes one section followed by the CRC32 of its bytes (version ≥ 3).
fn write_section_checksummed(
    w: &mut impl Write,
    records: &[(String, Tensor)],
) -> Result<(), CheckpointError> {
    let mut buf = Vec::new();
    write_section(&mut buf, records)?;
    w.write_all(&buf)?;
    w.write_all(&(!crc32_update(CRC32_INIT, &buf)).to_le_bytes())?;
    Ok(())
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> Result<u64, CheckpointError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_section(
    r: &mut impl Read,
    what: &'static str,
) -> Result<HashMap<String, Tensor>, CheckpointError> {
    let count = read_u32(r)? as usize;
    let mut out = HashMap::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        if name_len > 4096 {
            return Err(CheckpointError::Corrupt("tensor name too long"));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| CheckpointError::Corrupt("non-UTF-8 tensor name"))?;
        let rank = read_u32(r)? as usize;
        if rank > 8 {
            return Err(CheckpointError::Corrupt("rank too large"));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(r)? as usize);
        }
        let n: usize = dims.iter().product();
        if n > 1 << 28 {
            return Err(CheckpointError::Corrupt(what));
        }
        let mut data = vec![0.0f32; n];
        for v in data.iter_mut() {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        out.insert(name, Tensor::from_vec(dims, data));
    }
    Ok(out)
}

type Sections = (HashMap<String, Tensor>, HashMap<String, Tensor>);

/// Reads a checkpoint's parameter and buffer sections (buffers empty for
/// version-1 files).
fn read_sections(path: impl AsRef<Path>) -> Result<Sections, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadHeader);
    }
    let version = read_u32(&mut r)?;
    if !(1..=VERSION).contains(&version) {
        return Err(CheckpointError::BadHeader);
    }
    let params = read_section_checked(&mut r, version, "parameter tensor too large")?;
    let buffers = if version >= 2 {
        read_section_checked(&mut r, version, "buffer tensor too large")?
    } else {
        HashMap::new()
    };
    Ok((params, buffers))
}

/// Reads one section, verifying the trailing CRC32 for version ≥ 3 files
/// (earlier versions carry no checksum).
fn read_section_checked(
    r: &mut impl Read,
    version: u32,
    what: &'static str,
) -> Result<HashMap<String, Tensor>, CheckpointError> {
    if version < 3 {
        return read_section(r, what);
    }
    let mut hr = Crc32Reader::new(r);
    let out = read_section(&mut hr, what)?;
    let computed = hr.finish();
    let stored = read_u32(r)?;
    if computed != stored {
        return Err(CheckpointError::Corrupt("section checksum mismatch"));
    }
    Ok(out)
}

/// Reads a checkpoint's parameters into a name → tensor map.
///
/// # Errors
///
/// Returns header/corruption errors for malformed files.
pub fn read_tensors(path: impl AsRef<Path>) -> Result<HashMap<String, Tensor>, CheckpointError> {
    Ok(read_sections(path)?.0)
}

/// Loads a checkpoint into `module`, matching parameters and buffers by
/// name.
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] if any module parameter is absent
/// from the file, has a different shape, or a stored buffer is rejected by
/// the module; file I/O and format errors propagate. Version-1 files carry
/// no buffers, so running statistics keep their in-memory values.
pub fn load(module: &dyn Module, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let (mut tensors, buffers) = read_sections(path)?;
    for p in module.params() {
        let Some(t) = tensors.remove(p.name()) else {
            return Err(CheckpointError::Mismatch(p.name().to_string()));
        };
        if t.dims() != p.var().value().dims() {
            return Err(CheckpointError::Mismatch(p.name().to_string()));
        }
        p.var().set_value(t);
    }
    for (name, t) in &buffers {
        if !module.set_buffer(name, t) {
            return Err(CheckpointError::Mismatch(name.clone()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::ForwardCtx;
    use instantnet_quant::{BitWidthSet, Quantizer};
    use instantnet_tensor::Var;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("instantnet-ckpt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_restores_outputs() {
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let a = models::small_cnn(4, 5, (6, 6), bits.len(), 1);
        let path = tmp("roundtrip.bin");
        save(&a, &path).unwrap();
        // A differently initialized clone of the same topology.
        let b = models::small_cnn(4, 5, (6, 6), bits.len(), 2);
        use rand::SeedableRng;
        let x = Var::constant(instantnet_tensor::init::uniform(
            &mut rand::rngs::StdRng::seed_from_u64(3),
            &[1, 3, 6, 6],
            -1.0,
            1.0,
        ));
        let fwd = |net: &models::Network| {
            let mut ctx = ForwardCtx::train(&bits, 0, Quantizer::Sbm);
            net.forward(&x, &mut ctx).value()
        };
        assert_ne!(fwd(&a), fwd(&b), "different seeds differ");
        load(&b, &path).unwrap();
        assert_eq!(fwd(&a), fwd(&b), "loaded weights reproduce outputs");
    }

    #[test]
    fn load_rejects_wrong_topology() {
        let a = models::small_cnn(4, 5, (6, 6), 1, 1);
        let path = tmp("wrong-topo.bin");
        save(&a, &path).unwrap();
        let wider = models::small_cnn(8, 5, (6, 6), 1, 1);
        let err = load(&wider, &path).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    }

    #[test]
    fn load_rejects_garbage_file() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let net = models::small_cnn(4, 5, (6, 6), 1, 1);
        let err = load(&net, &path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::BadHeader | CheckpointError::Io(_)),
            "{err}"
        );
    }

    #[test]
    fn read_tensors_exposes_names() {
        let net = models::small_cnn(4, 5, (6, 6), 2, 1);
        let path = tmp("names.bin");
        save(&net, &path).unwrap();
        let tensors = read_tensors(&path).unwrap();
        assert_eq!(tensors.len(), net.params().len());
        assert!(tensors.keys().any(|k| k.contains("classifier")));
        assert!(tensors.keys().any(|k| k.contains("gamma")));
    }

    #[test]
    fn bn_running_stats_survive_roundtrip() {
        use rand::SeedableRng;
        let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
        let a = models::small_cnn(4, 5, (6, 6), bits.len(), 1);
        let x = Var::constant(instantnet_tensor::init::uniform(
            &mut rand::rngs::StdRng::seed_from_u64(5),
            &[4, 3, 6, 6],
            -1.0,
            1.0,
        ));
        // Seed distinct running stats per branch with train passes.
        for i in 0..bits.len() {
            let mut ctx = ForwardCtx::train(&bits, i, Quantizer::Sbm);
            a.forward(&x, &mut ctx);
        }
        let path = tmp("bn-stats.bin");
        save(&a, &path).unwrap();
        let b = models::small_cnn(4, 5, (6, 6), bits.len(), 2);
        load(&b, &path).unwrap();
        let (ba, bb) = (a.buffers(), b.buffers());
        assert!(!ba.is_empty(), "small_cnn must expose BN buffers");
        assert_eq!(ba.len(), bb.len());
        for ((na, ta), (nb, tb)) in ba.iter().zip(&bb) {
            assert_eq!(na, nb);
            assert_eq!(ta.data(), tb.data(), "buffer {na} differs after load");
        }
        // Eval-mode forwards (which read running stats) now agree too.
        for i in 0..bits.len() {
            let ya = a
                .forward(&x, &mut ForwardCtx::eval(&bits, i, Quantizer::Sbm))
                .value();
            let yb = b
                .forward(&x, &mut ForwardCtx::eval(&bits, i, Quantizer::Sbm))
                .value();
            assert_eq!(ya, yb, "eval outputs differ at bit index {i}");
        }
    }

    #[test]
    fn version1_params_only_file_still_loads() {
        use std::io::Write as _;
        let net = models::small_cnn(4, 5, (6, 6), 2, 1);
        let params: Vec<(String, Tensor)> = net
            .params()
            .iter()
            .map(|p| (p.name().to_string(), p.var().value()))
            .collect();
        let path = tmp("v1.bin");
        let mut w = BufWriter::new(File::create(&path).unwrap());
        w.write_all(MAGIC).unwrap();
        w.write_all(&1u32.to_le_bytes()).unwrap();
        write_section(&mut w, &params).unwrap();
        w.flush().unwrap();
        drop(w);
        let other = models::small_cnn(4, 5, (6, 6), 2, 2);
        load(&other, &path).unwrap();
        assert_eq!(read_tensors(&path).unwrap().len(), params.len());
    }

    #[test]
    fn crc32_known_answer() {
        // IEEE CRC32 of "123456789" — the standard check value.
        assert_eq!(!crc32_update(CRC32_INIT, b"123456789"), 0xCBF4_3926);
        assert_eq!(!crc32_update(CRC32_INIT, b""), 0);
        // Incremental updates equal one-shot.
        let once = !crc32_update(CRC32_INIT, b"hello world");
        let split = !crc32_update(crc32_update(CRC32_INIT, b"hello "), b"world");
        assert_eq!(once, split);
    }

    #[test]
    fn bit_flip_reported_as_corrupt_not_garbage_weights() {
        let net = models::small_cnn(4, 5, (6, 6), 2, 1);
        let path = tmp("bit-flip.bin");
        save(&net, &path).unwrap();
        // Flip one bit inside the last section's tensor data (the file
        // tail is `…f32 data, crc32`), where the record structure still
        // parses fine — only the checksum can catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = bytes.len() - 6;
        bytes[victim] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let other = models::small_cnn(4, 5, (6, 6), 2, 3);
        let err = load(&other, &path).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Corrupt("section checksum mismatch")),
            "expected checksum failure, got: {err}"
        );
        // Restoring the bit makes the file load again.
        bytes[victim] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        load(&other, &path).unwrap();
    }

    #[test]
    fn v2_unchecksummed_file_still_loads() {
        use std::io::Write as _;
        let net = models::small_cnn(4, 5, (6, 6), 2, 1);
        let params: Vec<(String, Tensor)> = net
            .params()
            .iter()
            .map(|p| (p.name().to_string(), p.var().value()))
            .collect();
        let path = tmp("v2.bin");
        let mut w = BufWriter::new(File::create(&path).unwrap());
        w.write_all(MAGIC).unwrap();
        w.write_all(&2u32.to_le_bytes()).unwrap();
        write_section(&mut w, &params).unwrap();
        write_section(&mut w, &net.buffers()).unwrap();
        w.flush().unwrap();
        drop(w);
        let other = models::small_cnn(4, 5, (6, 6), 2, 2);
        load(&other, &path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let net = models::small_cnn(4, 5, (6, 6), 1, 1);
        let err = load(&net, tmp("does-not-exist.bin")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
