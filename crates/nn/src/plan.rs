//! Structural introspection for inference engines.
//!
//! [`crate::Module::plan_ops`] flattens a network into a linear list of
//! [`PlanOp`]s — plain data (weight tensors, BN statistics, shape
//! parameters) with no autograd state — which the integer inference engine
//! (`crates/infer`) consumes to prepack weights per bit-width. Modules that
//! have no data-level description (e.g. PACT-clipped convolutions, whose
//! activation rule depends on a learnable parameter the engine does not
//! model) return `None` and opt the whole network out of packing.

use crate::layers::Activation;
use instantnet_tensor::Tensor;

/// One inference-plan operation, in execution order.
#[derive(Debug, Clone)]
pub enum PlanOp {
    /// Grouped 2-d convolution, no bias (BN follows).
    Conv {
        /// Parameter name of the weight (diagnostics).
        name: String,
        /// Weight tensor `[out_c, in_c/groups, k, k]`, full precision.
        weight: Tensor,
        /// Square stride.
        stride: usize,
        /// Zero padding per side.
        pad: usize,
        /// Channel groups.
        groups: usize,
        /// Whether the input is re-quantized before the conv (false for
        /// the raw-image stem layer).
        quantize_input: bool,
    },
    /// Switchable batch norm: one affine + running-stat set per bit-width
    /// branch; branch `i` corresponds to bit-width index `i`.
    BatchNorm {
        /// Per-branch scale `[channels]`.
        gamma: Vec<Tensor>,
        /// Per-branch shift `[channels]`.
        beta: Vec<Tensor>,
        /// Per-branch running mean `[channels]`.
        mean: Vec<Tensor>,
        /// Per-branch running variance `[channels]`.
        var: Vec<Tensor>,
        /// Variance epsilon.
        eps: f32,
    },
    /// Pointwise activation.
    Act(Activation),
    /// Global average pooling + flatten, `[N,C,H,W] -> [N,C]`.
    GlobalAvgPool,
    /// Fully-connected layer with bias; input is quantized first.
    Linear {
        /// Parameter name of the weight (diagnostics).
        name: String,
        /// Weight `[out_features, in_features]`, full precision.
        weight: Tensor,
        /// Bias `[out_features]`.
        bias: Tensor,
    },
    /// Residual connection: `post(body(x) + shortcut(x))`, identity
    /// shortcut when `shortcut` is empty, `post` = ReLU iff `post_relu`.
    Residual {
        /// Main path.
        body: Vec<PlanOp>,
        /// Projection path (empty = identity).
        shortcut: Vec<PlanOp>,
        /// Apply ReLU after the add (ResNet basic block).
        post_relu: bool,
    },
}

/// Concatenates children's plans; `None` if any child has none.
pub fn concat_plans(parts: Vec<Option<Vec<PlanOp>>>) -> Option<Vec<PlanOp>> {
    let mut out = Vec::new();
    for p in parts {
        out.extend(p?);
    }
    Some(out)
}
