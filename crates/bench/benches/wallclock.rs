//! Wall-clock serving throughput on a packed 4-bit CNN.
//!
//! Three kinds of entries share the `BENCH_wallclock.json` snapshot:
//!
//! * `wallclock_wall_workers{1,2,4}` — wall-clock time for
//!   `serve_wallclock` to play and fully drain the same 192-request
//!   burst. The schedule itself is only 3 paced steps of 1 ms, so the
//!   drain — real threads pulling real batches through real forwards —
//!   dominates the measurement.
//! * `wallclock_sustained_workers{1,2,4}` — sustained service time per
//!   request, `elapsed / served`, from one run's `RuntimeStats`. This is
//!   the capacity figure the threaded loop exists to scale. On a machine
//!   with ≥4 cores `bench_check` enforces the ≥2.5× 1-vs-4-worker floor
//!   on these entries; on fewer cores the workers serialize and the
//!   floor is skipped (the snapshot still records the honest numbers).
//! * `wallclock_sustained_skew_{shared,sharded}4` — the queue-mode
//!   face-off: sustained service time per request for a 4-worker fleet
//!   draining a heavy skewed burst through many tiny max-batch-1 batches
//!   (the contention regime sharding exists for), once over the single
//!   shared queue and once over per-worker shards with stealing. Medians
//!   over several runs; on a ≥4-core runner `bench_check` enforces the
//!   sharded path at ≥1.3× the shared twin's throughput.
//!
//! Every entry carries the recording runner's core count; `bench_check`
//! refuses to compare entries recorded on differently-sized machines.
//!
//! Worker forwards split the ambient kernel-thread allowance, so the
//! scaling measured here is replica parallelism, not kernel parallelism
//! counted twice.

use criterion::{criterion_group, criterion_main, Criterion};
use instantnet::runtime::{EnergyTrace, Policy, RequestTrace, SimulationConfig};
use instantnet::wallclock::{serve_wallclock, QueueMode, WallclockConfig};
use instantnet::{DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_nn::blocks::ConvBnAct;
use instantnet_nn::layers::{Activation, GlobalAvgPool, QuantLinear};
use instantnet_nn::Sequential;
use instantnet_quant::{BitWidth, BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Same stem + quantized-head CNN as the serving benches: the regime
/// where batch aggregation (and therefore multi-worker draining) pays.
fn serving_cnn(rng: &mut StdRng) -> Sequential {
    let mut body = Sequential::new();
    body.push(Box::new(ConvBnAct::new(
        rng,
        "stem",
        3,
        8,
        3,
        2,
        1,
        1,
        Activation::Relu,
        false,
    )));
    body.push(Box::new(ConvBnAct::new(
        rng,
        "conv2",
        8,
        32,
        3,
        2,
        1,
        1,
        Activation::Relu,
        true,
    )));
    body.push(Box::new(GlobalAvgPool));
    body.push(Box::new(QuantLinear::new(rng, "fc1", 32, 256)));
    body.push(Box::new(QuantLinear::new(rng, "fc2", 256, 256)));
    body.push(Box::new(QuantLinear::new(rng, "fc3", 256, 10)));
    body
}

fn report_4bit() -> DeploymentReport {
    DeploymentReport::new(
        "wallclock-bench",
        1,
        vec![OperatingPoint {
            bits: BitWidth::new(4),
            accuracy: 0.6,
            energy_pj: 10.0,
            latency_s: 1e-3,
            edp: 1e-2,
            fps: 1000.0,
        }],
    )
}

fn bench_wallclock(c: &mut Criterion) {
    let bits = BitWidthSet::new(vec![4]).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let net = serving_cnn(&mut rng);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_4bit();
    let inputs: Vec<Tensor> = (0..4)
        .map(|_| init::uniform(&mut rng, &[1, 3, 8, 8], -1.0, 1.0))
        .collect();

    // One 192-request burst at step 0 of a 4-step, 1 ms/step schedule:
    // pacing costs ~3 ms, the drain is where the workers earn their keep.
    let steps = 4;
    let total = 192usize;
    let trace = EnergyTrace::new(vec![15.0; steps]);
    let mut arrivals = vec![0usize; steps];
    arrivals[0] = total;
    let requests = RequestTrace::new(arrivals);

    for workers in [1usize, 2, 4] {
        let wall = WallclockConfig {
            workers,
            max_batch: 16,
            step_time: Duration::from_millis(1),
            ..WallclockConfig::default()
        };
        let run = || {
            serve_wallclock(
                &report,
                &trace,
                &requests,
                Policy::Greedy,
                &SimulationConfig::default(),
                &wall,
                &model,
                &inputs,
            )
            .expect("bench config is valid")
        };
        c.bench_function(&format!("wallclock_wall_workers{workers}"), |b| {
            b.iter(|| std::hint::black_box(run()))
        });
        let (stats, _) = run();
        assert_eq!(stats.served_requests, total, "burst must fully drain");
        c.record_metric(
            &format!("wallclock_sustained_workers{workers}"),
            stats.elapsed_us as f64 * 1e3 / stats.served_requests as f64,
        );
    }
}

/// The queue-contention regime: a tiny quantized MLP whose forward is
/// cheap enough that queue push/pop cost is a real fraction of service
/// time, drained at `max_batch: 1` so every request is its own pop.
fn tiny_mlp(rng: &mut StdRng) -> Sequential {
    let mut body = Sequential::new();
    body.push(Box::new(QuantLinear::new(rng, "fc1", 16, 32)));
    body.push(Box::new(QuantLinear::new(rng, "fc2", 32, 10)));
    body
}

/// Shared-vs-sharded on a skewed burst: 4 workers, one deep burst at
/// step 0, one pop per request. Shared mode serializes every pop on one
/// mutex; sharded mode pops its own shard and steals when dry. The
/// snapshot records the median sustained ns/request of each mode.
fn bench_wallclock_skew(c: &mut Criterion) {
    let bits = BitWidthSet::new(vec![4]).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let net = tiny_mlp(&mut rng);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_4bit();
    let inputs: Vec<Tensor> = (0..4)
        .map(|_| init::uniform(&mut rng, &[1, 16], -1.0, 1.0))
        .collect();

    let steps = 2;
    let total = 4096usize;
    let trace = EnergyTrace::new(vec![15.0; steps]);
    let mut arrivals = vec![0usize; steps];
    arrivals[0] = total;
    let requests = RequestTrace::new(arrivals);

    for (tag, queue) in [
        ("shared", QueueMode::Shared),
        ("sharded", QueueMode::Sharded { stealing: true }),
    ] {
        let wall = WallclockConfig {
            workers: 4,
            max_batch: 1,
            step_time: Duration::from_micros(200),
            queue,
            ..WallclockConfig::default()
        };
        let mut sustained: Vec<f64> = (0..5)
            .map(|_| {
                let (stats, _) = serve_wallclock(
                    &report,
                    &trace,
                    &requests,
                    Policy::Greedy,
                    &SimulationConfig::default(),
                    &wall,
                    &model,
                    &inputs,
                )
                .expect("bench config is valid");
                assert_eq!(stats.served_requests, total, "burst must fully drain");
                stats.elapsed_us as f64 * 1e3 / stats.served_requests as f64
            })
            .collect();
        sustained.sort_by(|a, b| a.total_cmp(b));
        c.record_metric(
            &format!("wallclock_sustained_skew_{tag}4"),
            sustained[sustained.len() / 2],
        );
    }
}

criterion_group! {
    name = wallclock;
    config = Criterion::default().sample_size(10);
    targets = bench_wallclock, bench_wallclock_skew
}
criterion_main!(wallclock);
