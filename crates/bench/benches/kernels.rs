//! Criterion micro-benchmarks of the numerical substrate: convolution
//! forward/backward, quantizers, batch norm, matmul.

use criterion::{criterion_group, criterion_main, Criterion};
use instantnet_quant::{BitWidth, Quantizer};
use instantnet_tensor::{init, ops, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = init::uniform(&mut rng, &[64, 64], -1.0, 1.0);
    let b = init::uniform(&mut rng, &[64, 64], -1.0, 1.0);
    c.bench_function("matmul_64x64", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul(&b)))
    });
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = Var::constant(init::uniform(&mut rng, &[4, 16, 16, 16], -1.0, 1.0));
    let w = Var::constant(init::kaiming_uniform(&mut rng, &[32, 16, 3, 3]));
    c.bench_function("conv2d_forward_4x16x16x16", |bench| {
        bench.iter(|| std::hint::black_box(ops::conv2d(&x, &w, 1, 1, 1).value()))
    });
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Var::constant(init::uniform(&mut rng, &[2, 8, 12, 12], -1.0, 1.0));
    c.bench_function("conv2d_train_step_2x8x12x12", |bench| {
        bench.iter(|| {
            let w = Var::leaf(init::kaiming_uniform(&mut rng, &[16, 8, 3, 3]), true);
            let y = ops::conv2d(&x, &w, 1, 1, 1);
            y.sum().backward();
            std::hint::black_box(w.grad())
        })
    });
}

fn bench_depthwise_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = Var::constant(init::uniform(&mut rng, &[4, 32, 16, 16], -1.0, 1.0));
    let w = Var::constant(init::kaiming_uniform(&mut rng, &[32, 1, 3, 3]));
    c.bench_function("depthwise_conv2d_4x32x16x16", |bench| {
        bench.iter(|| std::hint::black_box(ops::conv2d(&x, &w, 1, 1, 32).value()))
    });
}

fn bench_quantizers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let w = init::uniform(&mut rng, &[64, 256], -1.0, 1.0);
    let b4 = BitWidth::new(4);
    c.bench_function("sbm_quantize_16k_weights", |bench| {
        bench.iter(|| std::hint::black_box(Quantizer::Sbm.quantize_weights_tensor(&w, b4)))
    });
    c.bench_function("dorefa_quantize_16k_weights", |bench| {
        bench.iter(|| std::hint::black_box(Quantizer::Dorefa.quantize_weights_tensor(&w, b4)))
    });
}

fn bench_batch_norm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let x = Var::constant(init::uniform(&mut rng, &[8, 32, 8, 8], -1.0, 1.0));
    let gamma = Var::constant(Tensor::ones(&[32]));
    let beta = Var::constant(Tensor::zeros(&[32]));
    c.bench_function("batch_norm2d_8x32x8x8", |bench| {
        bench.iter(|| {
            std::hint::black_box(ops::batch_norm2d(&x, &gamma, &beta, 1e-5, None).out.value())
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_conv_forward, bench_conv_backward,
              bench_depthwise_conv, bench_quantizers, bench_batch_norm
}
criterion_main!(kernels);
