//! Overhead of the resilient serving path.
//!
//! Three configurations push the same 48 requests through the same packed
//! 4-bit CNN as the `serving` group:
//!
//! * `resilience_off` — the plain `simulate_serving_batched` baseline;
//! * `resilience_defaults` — `simulate_serving_resilient` with every knob
//!   at its default and no faults. This is the price of the resilient
//!   machinery itself (admission checks, per-request status, the
//!   `catch_unwind` fence) on the path that must stay bit-identical to
//!   the baseline — `bench_check` holds it to ≤1.1× within the same run;
//! * `resilience_chaos` — deadlines, a queue cap, retries, degradation,
//!   and a seeded fault plan all active, as an informational upper bound
//!   (it does strictly more bookkeeping *and* retries real forwards).
//!
//! Requests/sec is `48 / t` for the first two; the chaos row serves
//! however many survive its fault plan.

use criterion::{criterion_group, criterion_main, Criterion};
use instantnet::faults::{FaultPlan, FaultRates};
use instantnet::resilience::{simulate_serving_resilient, DegradationConfig, ResilienceConfig};
use instantnet::runtime::{
    simulate_serving_batched, EnergyTrace, Policy, RequestTrace, ServingConfig, SimulationConfig,
};
use instantnet::{DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_nn::blocks::ConvBnAct;
use instantnet_nn::layers::{Activation, GlobalAvgPool, QuantLinear};
use instantnet_nn::Sequential;
use instantnet_quant::{BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The `serving` group's CNN — strided conv stem, global pool, and a
/// head-heavy quantized classifier — with one BN branch per bit-width so
/// the degradation controller has two real operating points to move
/// between.
fn serving_cnn(rng: &mut StdRng, n_bits: usize) -> Sequential {
    let mut body = Sequential::new();
    body.push(Box::new(ConvBnAct::new(
        rng,
        "stem",
        3,
        8,
        3,
        2,
        1,
        n_bits,
        Activation::Relu,
        false,
    )));
    body.push(Box::new(ConvBnAct::new(
        rng,
        "conv2",
        8,
        32,
        3,
        2,
        1,
        n_bits,
        Activation::Relu,
        true,
    )));
    body.push(Box::new(GlobalAvgPool));
    body.push(Box::new(QuantLinear::new(rng, "fc1", 32, 256)));
    body.push(Box::new(QuantLinear::new(rng, "fc2", 256, 256)));
    body.push(Box::new(QuantLinear::new(rng, "fc3", 256, 10)));
    body
}

fn bench_resilience(c: &mut Criterion) {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let net = serving_cnn(&mut rng, bits.len());
    let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let mk = |i: usize| {
        let e = 10.0 * (i + 1) as f64;
        let l = 1e-3 * (i + 1) as f64;
        OperatingPoint {
            bits: bits.widths()[i],
            accuracy: 0.55 + 0.05 * i as f32,
            energy_pj: e,
            latency_s: l,
            edp: e * l,
            fps: 1.0 / l,
        }
    };
    let report = DeploymentReport::new("resilience-bench", 1, vec![mk(0), mk(1)]);
    let inputs: Vec<Tensor> = (0..4)
        .map(|_| init::uniform(&mut rng, &[1, 3, 8, 8], -1.0, 1.0))
        .collect();
    let steps = 12;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::uniform(4, steps);
    let serving = ServingConfig { max_batch: 4 };
    let sim = SimulationConfig::default();

    c.bench_function("resilience_off", |b| {
        b.iter(|| {
            std::hint::black_box(simulate_serving_batched(
                &report,
                &trace,
                &requests,
                Policy::Greedy,
                &sim,
                &serving,
                &mut model,
                &inputs,
            ))
        })
    });

    let defaults = ResilienceConfig::default();
    let no_faults = FaultPlan::none();
    c.bench_function("resilience_defaults", |b| {
        b.iter(|| {
            std::hint::black_box(
                simulate_serving_resilient(
                    &report,
                    &trace,
                    &requests,
                    Policy::Greedy,
                    &sim,
                    &serving,
                    &defaults,
                    &no_faults,
                    &mut model,
                    &inputs,
                )
                .expect("default config is valid"),
            )
        })
    });

    let chaos_cfg = ResilienceConfig {
        deadline_steps: Some(4),
        max_queue_depth: Some(24),
        max_retries: 2,
        retry_backoff_steps: 1,
        step_time_s: Some(5e-3),
        degradation: Some(DegradationConfig {
            backlog_high: 6,
            backlog_low: 2,
            recovery_window: 2,
        }),
    };
    // Transients and stalls only: injected panics would spam the bench log
    // through the panic hook (the simulator still isolates them — that
    // path is covered by the fault-injection test suite).
    let chaos_faults = FaultPlan::seeded(
        99,
        steps,
        FaultRates {
            stall: 0.1,
            transient: 0.1,
            panic: 0.0,
        },
    );
    c.bench_function("resilience_chaos", |b| {
        b.iter(|| {
            std::hint::black_box(
                simulate_serving_resilient(
                    &report,
                    &trace,
                    &requests,
                    Policy::Greedy,
                    &sim,
                    &serving,
                    &chaos_cfg,
                    &chaos_faults,
                    &mut model,
                    &inputs,
                )
                .expect("chaos config is valid"),
            )
        })
    });
}

criterion_group! {
    name = resilience;
    config = Criterion::default().sample_size(20);
    targets = bench_resilience
}
criterion_main!(resilience);
