//! Hot-reload overhead on the wall-clock serving loop.
//!
//! Three kinds of entries share the `BENCH_reload.json` snapshot:
//!
//! * `reload_swap_latency` — wall time for one `ModelRegistry::publish`
//!   pointer swap (version allocation + lock + epoch bump), averaged
//!   over a burst of publishes. This is the registry's whole write cost;
//!   workers pay one atomic epoch load per batch to observe it.
//! * `reload_off` — sustained service time per request
//!   (`elapsed / served`) for `serve_wallclock_registry` over a
//!   single-version registry that never publishes: the degenerate
//!   configuration that must price like plain `serve_wallclock`.
//! * `reload_on` — the same run with an equivalent-weights candidate
//!   published mid-drain from a publisher thread. The swap re-pins every
//!   worker (an O(1) Arc clone each at the next batch boundary), so the
//!   throughput dip is bounded: `bench_check` enforces
//!   `reload_on / reload_off ≤ 1.1×`, mirroring the resilience ceiling —
//!   hot reload is supposed to be bookkeeping on top of serving, not a
//!   second serving path. (`reload_wall_{off,on}` record the criterion
//!   wall-time medians of the same two runs, for the cross-run history.)

use criterion::{criterion_group, criterion_main, Criterion};
use instantnet::registry::ModelRegistry;
use instantnet::runtime::{EnergyTrace, Policy, RequestTrace, SimulationConfig};
use instantnet::wallclock::{serve_wallclock_registry, WallclockConfig};
use instantnet::{faults::FaultPlan, DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_nn::blocks::ConvBnAct;
use instantnet_nn::layers::{Activation, GlobalAvgPool, QuantLinear};
use instantnet_nn::Sequential;
use instantnet_quant::{BitWidth, BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Same stem + quantized-head CNN as the serving benches.
fn serving_cnn(rng: &mut StdRng) -> Sequential {
    let mut body = Sequential::new();
    body.push(Box::new(ConvBnAct::new(
        rng,
        "stem",
        3,
        8,
        3,
        2,
        1,
        1,
        Activation::Relu,
        false,
    )));
    body.push(Box::new(ConvBnAct::new(
        rng,
        "conv2",
        8,
        32,
        3,
        2,
        1,
        1,
        Activation::Relu,
        true,
    )));
    body.push(Box::new(GlobalAvgPool));
    body.push(Box::new(QuantLinear::new(rng, "fc1", 32, 256)));
    body.push(Box::new(QuantLinear::new(rng, "fc2", 256, 256)));
    body.push(Box::new(QuantLinear::new(rng, "fc3", 256, 10)));
    body
}

fn report_4bit() -> DeploymentReport {
    DeploymentReport::new(
        "reload-bench",
        1,
        vec![OperatingPoint {
            bits: BitWidth::new(4),
            accuracy: 0.6,
            energy_pj: 10.0,
            latency_s: 1e-3,
            edp: 1e-2,
            fps: 1000.0,
        }],
    )
}

fn bench_reload(c: &mut Criterion) {
    let bits = BitWidthSet::new(vec![4]).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let net = serving_cnn(&mut rng);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_4bit();
    let inputs: Vec<Tensor> = (0..4)
        .map(|_| init::uniform(&mut rng, &[1, 3, 8, 8], -1.0, 1.0))
        .collect();

    // Swap latency: the registry's whole write path, measured directly.
    // Each publish allocates the version, takes the lock, swaps the
    // stable Arc, and bumps the epoch — the model itself is an O(1)
    // clone over shared packed tables.
    let swaps = 256u32;
    let registry = ModelRegistry::new(model.clone(), "v0");
    let start = Instant::now();
    for k in 0..swaps {
        registry
            .publish(model.clone(), format!("v{k}"), None)
            .expect("compatible publish");
    }
    let swap_ns = start.elapsed().as_nanos() as f64 / f64::from(swaps);
    c.record_metric("reload_swap_latency", swap_ns);

    // Throughput dip: the same 192-request burst as the wallclock bench,
    // served with and without a mid-drain publish.
    let steps = 4;
    let total = 192usize;
    let trace = EnergyTrace::new(vec![15.0; steps]);
    let mut arrivals = vec![0usize; steps];
    arrivals[0] = total;
    let requests = RequestTrace::new(arrivals);
    let wall = WallclockConfig {
        workers: 2,
        max_batch: 16,
        step_time: Duration::from_millis(1),
        ..WallclockConfig::default()
    };
    let run = |publish: bool| {
        let registry = ModelRegistry::new(model.clone(), "stable");
        std::thread::scope(|s| {
            let reg = &registry;
            let candidate = model.clone();
            let publisher = publish.then(|| {
                s.spawn(move || {
                    // Land inside the drain: the burst takes well over a
                    // millisecond of forwards to clear.
                    std::thread::sleep(Duration::from_micros(500));
                    reg.publish(candidate, "swapped", None)
                        .expect("compatible publish");
                })
            });
            let out = serve_wallclock_registry(
                &report,
                &trace,
                &requests,
                Policy::Greedy,
                &SimulationConfig::default(),
                &wall,
                reg,
                &FaultPlan::none(),
                &inputs,
            )
            .expect("bench config is valid");
            if let Some(p) = publisher {
                p.join().expect("publisher never panics");
            }
            out
        })
    };

    // One-shot wall-clock runs are scheduler-noisy; the gated sustained
    // metrics take the median of several full drains so the 1.1× ceiling
    // compares steady-state service time, not one lucky (or unlucky) run.
    let sustained = |publish: bool| {
        let mut per_request: Vec<f64> = (0..9)
            .map(|_| {
                let (stats, _) = run(publish);
                assert_eq!(stats.served_requests, total, "burst must fully drain");
                stats.elapsed_us as f64 * 1e3 / stats.served_requests as f64
            })
            .collect();
        per_request.sort_by(f64::total_cmp);
        per_request[per_request.len() / 2]
    };
    for (name, wall_name, publish) in [
        ("reload_off", "reload_wall_off", false),
        ("reload_on", "reload_wall_on", true),
    ] {
        c.bench_function(wall_name, |b| b.iter(|| std::hint::black_box(run(publish))));
        c.record_metric(name, sustained(publish));
    }
}

criterion_group! {
    name = reload;
    config = Criterion::default().sample_size(10);
    targets = bench_reload
}
criterion_main!(reload);
