//! Throughput of the batched serving runtime on a packed 4-bit CNN.
//!
//! Every configuration pushes the same 48 requests through
//! `simulate_serving_batched` — 48 steps × 1 arrival, 12 × 4, or 3 × 16 —
//! so sample times compare per-request cost directly: requests/sec is
//! `48 / t`, and the batch-16 / batch-1 ratio is the amortization the
//! request queue buys (weights decoded once per forward, one parallel
//! region and one set of buffers per batch instead of per request).
//!
//! The model mirrors the late stages of a deployment CNN: a strided conv
//! stem collapses the spatial extent quickly and a quantized classifier
//! head holds most of the weights. That is the serving regime where
//! batching pays — per-forward weight decode scales with the parameter
//! count, not the batch, so head-heavy layers amortize across the batch
//! while wide-spatial convs are compute-bound either way.

use criterion::{criterion_group, criterion_main, Criterion};
use instantnet::runtime::{
    simulate_serving_batched, EnergyTrace, Policy, RequestTrace, ServingConfig, SimulationConfig,
};
use instantnet::{DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_nn::blocks::ConvBnAct;
use instantnet_nn::layers::{Activation, GlobalAvgPool, QuantLinear};
use instantnet_nn::Sequential;
use instantnet_quant::{BitWidth, BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strided conv stem on an 8x8 input, global pool, then a 3-layer
/// quantized classifier head (32-256-256-10) that dominates the weights.
fn serving_cnn(rng: &mut StdRng) -> Sequential {
    let mut body = Sequential::new();
    body.push(Box::new(ConvBnAct::new(
        rng,
        "stem",
        3,
        8,
        3,
        2,
        1,
        1,
        Activation::Relu,
        false,
    )));
    body.push(Box::new(ConvBnAct::new(
        rng,
        "conv2",
        8,
        32,
        3,
        2,
        1,
        1,
        Activation::Relu,
        true,
    )));
    body.push(Box::new(GlobalAvgPool));
    body.push(Box::new(QuantLinear::new(rng, "fc1", 32, 256)));
    body.push(Box::new(QuantLinear::new(rng, "fc2", 256, 256)));
    body.push(Box::new(QuantLinear::new(rng, "fc3", 256, 10)));
    body
}

fn bench_serving(c: &mut Criterion) {
    let bits = BitWidthSet::new(vec![4]).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let net = serving_cnn(&mut rng);
    let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = DeploymentReport::new(
        "serving-bench",
        1,
        vec![OperatingPoint {
            bits: BitWidth::new(4),
            accuracy: 0.6,
            energy_pj: 10.0,
            latency_s: 1e-3,
            edp: 1e-2,
            fps: 1000.0,
        }],
    );
    let inputs: Vec<Tensor> = (0..4)
        .map(|_| init::uniform(&mut rng, &[1, 3, 8, 8], -1.0, 1.0))
        .collect();
    // Same 48 requests per invocation; only the aggregation differs.
    for (name, per_step, steps, max_batch) in [
        ("serving_batch1", 1, 48, 1),
        ("serving_batch4", 4, 12, 4),
        ("serving_batch16", 16, 3, 16),
    ] {
        let trace = EnergyTrace::new(vec![15.0; steps]);
        let requests = RequestTrace::uniform(per_step, steps);
        let serving = ServingConfig { max_batch };
        c.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(simulate_serving_batched(
                    &report,
                    &trace,
                    &requests,
                    Policy::Greedy,
                    &SimulationConfig::default(),
                    &serving,
                    &mut model,
                    &inputs,
                ))
            })
        });
    }
}

criterion_group! {
    name = serving;
    config = Criterion::default().sample_size(20);
    targets = bench_serving
}
criterion_main!(serving);
