//! Criterion benchmarks of the dataflow cost model and the AutoMapper
//! search loops: evaluation throughput and time-to-solution of
//! evolutionary vs random search at equal budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use instantnet_automapper::{evolve_layer, random_search_layer, MapperConfig};
use instantnet_dataflow::{ConvDims, Mapping};
use instantnet_hwmodel::{baselines, evaluate_layer, Device};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn alexnet_conv2() -> ConvDims {
    ConvDims::new(1, 256, 96, 27, 27, 5, 5, 1)
}

fn bench_cost_model(c: &mut Criterion) {
    let dims = alexnet_conv2();
    let device = Device::eyeriss_like();
    let mapping = baselines::eyeriss_row_stationary(&dims, &device, 16);
    c.bench_function("cost_model_single_eval", |b| {
        b.iter(|| std::hint::black_box(evaluate_layer(&dims, &mapping, &device, 16)))
    });
}

fn bench_random_sampling(c: &mut Criterion) {
    let dims = alexnet_conv2();
    let mut rng = StdRng::seed_from_u64(0);
    c.bench_function("mapping_random_sample", |b| {
        b.iter(|| std::hint::black_box(Mapping::random(&dims, &mut rng)))
    });
}

fn bench_evolutionary_search(c: &mut Criterion) {
    let dims = alexnet_conv2();
    let device = Device::eyeriss_like();
    let cfg = MapperConfig {
        max_evals: 200,
        ..MapperConfig::default()
    };
    c.bench_function("automapper_evolve_200_evals", |b| {
        b.iter(|| std::hint::black_box(evolve_layer(&dims, &device, 16, &cfg).cost.edp()))
    });
}

fn bench_random_search(c: &mut Criterion) {
    let dims = alexnet_conv2();
    let device = Device::eyeriss_like();
    let cfg = MapperConfig {
        max_evals: 200,
        ..MapperConfig::default()
    };
    c.bench_function("random_search_200_evals", |b| {
        b.iter(|| std::hint::black_box(random_search_layer(&dims, &device, 16, &cfg).cost.edp()))
    });
}

criterion_group! {
    name = mapper;
    config = Criterion::default().sample_size(10);
    targets = bench_cost_model, bench_random_sampling,
              bench_evolutionary_search, bench_random_search
}
criterion_main!(mapper);
