//! Sharded serving throughput on a packed 4-bit CNN.
//!
//! Two kinds of entries share the `BENCH_sharding.json` snapshot:
//!
//! * `sharded_wall_replicas{1,2,4}` — wall-clock time to push the same
//!   96-request burst through `simulate_serving_sharded`. Tracked for
//!   regressions; on a single-core runner the replica forwards serialize,
//!   so the wall ratio says nothing about serving capacity.
//! * `sharded_drain_replicas{1,2,4}` — the *simulated* drain makespan:
//!   steps until the burst is fully served, times a fixed 1 ms/step. This
//!   is the capacity figure sharding exists to scale — 96 requests at
//!   `max_batch` 4 need 24 serving steps on one replica, 6 on four — and
//!   it is deterministic on any host. `bench_check` enforces the ≥2.5×
//!   1-vs-4-replica floor on these entries.
//!
//! `sharded_cache_{off,on}` measure the content cache on a duplicate-heavy
//! trace (4 distinct samples across 48 requests): on-path hits skip whole
//! forwards, so the wall-clock gap is the cache's actual win.

use criterion::{criterion_group, criterion_main, Criterion};
use instantnet::runtime::{EnergyTrace, Policy, RequestTrace, ServingConfig, SimulationConfig};
use instantnet::sharding::{simulate_serving_sharded, ShardConfig, ShardedOutcome};
use instantnet::{faults::FaultPlan, DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_nn::blocks::ConvBnAct;
use instantnet_nn::layers::{Activation, GlobalAvgPool, QuantLinear};
use instantnet_nn::Sequential;
use instantnet_quant::{BitWidth, BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One simulated timestep in nanoseconds (1 ms — the operating point's
/// latency scale), turning drain makespans into snapshot ns entries.
const STEP_NS: f64 = 1e6;

/// Same stem + quantized-head CNN as the serving bench: the regime where
/// batching (and therefore multi-replica draining) pays.
fn serving_cnn(rng: &mut StdRng) -> Sequential {
    let mut body = Sequential::new();
    body.push(Box::new(ConvBnAct::new(
        rng,
        "stem",
        3,
        8,
        3,
        2,
        1,
        1,
        Activation::Relu,
        false,
    )));
    body.push(Box::new(ConvBnAct::new(
        rng,
        "conv2",
        8,
        32,
        3,
        2,
        1,
        1,
        Activation::Relu,
        true,
    )));
    body.push(Box::new(GlobalAvgPool));
    body.push(Box::new(QuantLinear::new(rng, "fc1", 32, 256)));
    body.push(Box::new(QuantLinear::new(rng, "fc2", 256, 256)));
    body.push(Box::new(QuantLinear::new(rng, "fc3", 256, 10)));
    body
}

fn report_4bit() -> DeploymentReport {
    DeploymentReport::new(
        "sharding-bench",
        1,
        vec![OperatingPoint {
            bits: BitWidth::new(4),
            accuracy: 0.6,
            energy_pj: 10.0,
            latency_s: 1e-3,
            edp: 1e-2,
            fps: 1000.0,
        }],
    )
}

fn makespan_steps(outcomes: &[ShardedOutcome]) -> usize {
    1 + outcomes
        .iter()
        .map(|o| o.served_at.expect("burst trace must fully drain"))
        .max()
        .expect("at least one request")
}

fn bench_sharding(c: &mut Criterion) {
    let bits = BitWidthSet::new(vec![4]).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let net = serving_cnn(&mut rng);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_4bit();
    let inputs: Vec<Tensor> = (0..4)
        .map(|_| init::uniform(&mut rng, &[1, 3, 8, 8], -1.0, 1.0))
        .collect();
    let serving = ServingConfig { max_batch: 4 };

    // The same 96-request burst at every replica count: all arrive at
    // step 0 and the fleet drains them at max_batch per replica per step.
    let steps = 96;
    let trace = EnergyTrace::new(vec![15.0; steps]);
    let mut arrivals = vec![0usize; steps];
    arrivals[0] = 96;
    let requests = RequestTrace::new(arrivals);

    for replicas in [1usize, 2, 4] {
        let shard = ShardConfig {
            replicas,
            ..ShardConfig::default()
        };
        let run = || {
            simulate_serving_sharded(
                &report,
                &trace,
                &requests,
                Policy::Greedy,
                &SimulationConfig::default(),
                &serving,
                &shard,
                &FaultPlan::none(),
                &model,
                &inputs,
            )
            .expect("bench config is valid")
        };
        c.bench_function(&format!("sharded_wall_replicas{replicas}"), |b| {
            b.iter(|| std::hint::black_box(run()))
        });
        let (stats, outcomes) = run();
        assert_eq!(stats.completed, 96, "burst must fully drain");
        c.record_metric(
            &format!("sharded_drain_replicas{replicas}"),
            makespan_steps(&outcomes) as f64 * STEP_NS,
        );
    }

    // Cache value on duplicate traffic: 48 requests cycling 4 samples,
    // 2 replicas. With the cache on, only the first occurrence of each
    // (sample, bit-width) pair runs a forward.
    let steps = 12;
    let trace = EnergyTrace::new(vec![15.0; steps]);
    let requests = RequestTrace::uniform(4, steps);
    for (name, cache) in [("sharded_cache_off", false), ("sharded_cache_on", true)] {
        let shard = ShardConfig {
            replicas: 2,
            cache,
            ..ShardConfig::default()
        };
        c.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(
                    simulate_serving_sharded(
                        &report,
                        &trace,
                        &requests,
                        Policy::Greedy,
                        &SimulationConfig::default(),
                        &serving,
                        &shard,
                        &FaultPlan::none(),
                        &model,
                        &inputs,
                    )
                    .expect("bench config is valid"),
                )
            })
        });
    }
}

criterion_group! {
    name = sharding;
    config = Criterion::default().sample_size(20);
    targets = bench_sharding
}
criterion_main!(sharding);
