//! Criterion benchmarks of the design choices DESIGN.md calls out: the
//! per-batch cost of each training strategy (the distillation cascade's
//! overhead over plain joint training), the stop-gradient's backward-pass
//! saving, and the supernet's Gumbel-softmax machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use instantnet_data::{Dataset, DatasetSpec};
use instantnet_nas::supernet::gumbel_softmax;
use instantnet_nas::{SearchSpace, Supernet};
use instantnet_nn::{models, ForwardCtx, Module};
use instantnet_quant::{BitWidthSet, Quantizer};
use instantnet_tensor::{Tensor, Var};
use instantnet_train::{strategy::batch_loss, PrecisionLadder, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_strategy_step(c: &mut Criterion) {
    let ds = Dataset::generate(&DatasetSpec::tiny());
    let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
    let ladder = PrecisionLadder::uniform(&bits);
    let net = models::small_cnn(6, ds.num_classes(), (ds.hw(), ds.hw()), bits.len(), 0);
    let (x, labels) = ds.batch(&[0, 1, 2, 3, 4, 5, 6, 7]);
    let xv = Var::constant(x);
    for strategy in [
        Strategy::cdt(),
        Strategy::CdtNoStopGrad { beta: 0.2 },
        Strategy::sp_net(),
        Strategy::AdaBits,
    ] {
        c.bench_function(&format!("train_step_{}", strategy.label()), |b| {
            b.iter(|| {
                let loss = batch_loss(&net, &xv, &labels, &ladder, Quantizer::Sbm, strategy);
                loss.backward();
                for p in net.params() {
                    p.var().zero_grad();
                }
                std::hint::black_box(loss.item())
            })
        });
    }
}

fn bench_supernet_forward(c: &mut Criterion) {
    let bits = BitWidthSet::new(vec![4, 32]).unwrap();
    let sn = Supernet::new(&SearchSpace::cifar_tiny(3), 10, bits.len(), 0);
    let x = Var::constant(Tensor::zeros(&[4, 3, 8, 8]));
    c.bench_function("supernet_forward_3_slots", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut ctx = ForwardCtx::train(&bits, 0, Quantizer::Sbm);
            std::hint::black_box(sn.forward(&x, &mut ctx, 3.0, &mut rng).logits.value())
        })
    });
}

fn bench_gumbel(c: &mut Criterion) {
    let theta = Var::leaf(Tensor::zeros(&[7]), true);
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("gumbel_softmax_7", |b| {
        b.iter(|| std::hint::black_box(gumbel_softmax(&theta, 3.0, &mut rng).value()))
    });
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = bench_strategy_step, bench_supernet_forward, bench_gumbel
}
criterion_main!(ablation);
