//! Criterion micro-benchmarks of the packed integer inference engine
//! against the f32 fake-quant reference path, plus the cost of a bit-width
//! switch (a pointer swap on the packed path).
//!
//! Kernel-bound entries come in pairs: the plain name runs the default
//! SIMD dispatch (AVX2 where detected), and the `_scalar` twin forces the
//! portable kernels via `with_simd_backend` — `bench_check` floors the
//! scalar/SIMD ratio on AVX2 hosts. The ≤8-bit tiers add a `_widen` twin
//! that disables the fused multiply-on-packed-codes kernels via
//! `with_fused_gemm(false)` (the PR 6 decode-then-multiply path), so the
//! fused speedup is floored within-run too.

use criterion::{criterion_group, criterion_main, Criterion};
use instantnet_infer::{with_fused_gemm, with_simd_backend, PackedModel, SimdBackend};
use instantnet_nn::layers::{QuantConv2d, QuantLinear};
use instantnet_nn::{ForwardCtx, Module};
use instantnet_quant::{BitWidthSet, Quantizer};
use instantnet_tensor::{init, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let layer = QuantLinear::new(&mut rng, "fc", 256, 256);
    let x = init::uniform(&mut rng, &[64, 256], -0.3, 1.2);
    let bits = BitWidthSet::new(vec![4, 8, 16]).unwrap();
    let packed = PackedModel::prepack(&layer, &bits, Quantizer::Sbm).unwrap();
    c.bench_function("packed_gemm_4bit_64x256x256", |b| {
        b.iter(|| std::hint::black_box(packed.forward_at(0, &x)))
    });
    c.bench_function("packed_gemm_8bit_64x256x256", |b| {
        b.iter(|| std::hint::black_box(packed.forward_at(1, &x)))
    });
    // 16-bit lands on the i64 accumulator tier (long-reduction wide lanes).
    c.bench_function("packed_gemm_16bit_64x256x256", |b| {
        b.iter(|| std::hint::black_box(packed.forward_at(2, &x)))
    });
    // Fused kernels disabled: the widen-then-multiply path the fused
    // kernels replace for the ≤8-bit storage tiers (bit-identical output).
    c.bench_function("packed_gemm_4bit_64x256x256_widen", |b| {
        with_fused_gemm(false, || {
            b.iter(|| std::hint::black_box(packed.forward_at(0, &x)))
        })
    });
    c.bench_function("packed_gemm_8bit_64x256x256_widen", |b| {
        with_fused_gemm(false, || {
            b.iter(|| std::hint::black_box(packed.forward_at(1, &x)))
        })
    });
    // Forced-scalar twins of the three tiers (bit-identical outputs; only
    // the kernel backend differs).
    c.bench_function("packed_gemm_4bit_64x256x256_scalar", |b| {
        with_simd_backend(SimdBackend::Scalar, || {
            b.iter(|| std::hint::black_box(packed.forward_at(0, &x)))
        })
    });
    c.bench_function("packed_gemm_8bit_64x256x256_scalar", |b| {
        with_simd_backend(SimdBackend::Scalar, || {
            b.iter(|| std::hint::black_box(packed.forward_at(1, &x)))
        })
    });
    c.bench_function("packed_gemm_16bit_64x256x256_scalar", |b| {
        with_simd_backend(SimdBackend::Scalar, || {
            b.iter(|| std::hint::black_box(packed.forward_at(2, &x)))
        })
    });
    // The fake-quant path re-quantizes the weights on every forward.
    c.bench_function("fakequant_gemm_4bit_64x256x256", |b| {
        b.iter(|| {
            let mut ctx = ForwardCtx::eval(&bits, 0, Quantizer::Sbm);
            std::hint::black_box(layer.forward(&Var::constant(x.clone()), &mut ctx).value())
        })
    });
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let conv = QuantConv2d::new(&mut rng, "conv", 16, 32, 3, 1, 1, 1, true);
    let x = init::uniform(&mut rng, &[4, 16, 16, 16], -0.3, 1.2);
    let bits = BitWidthSet::new(vec![4, 8, 16]).unwrap();
    let packed = PackedModel::prepack(&conv, &bits, Quantizer::Sbm).unwrap();
    c.bench_function("packed_conv_4bit_4x16x16x16", |b| {
        b.iter(|| std::hint::black_box(packed.forward_at(0, &x)))
    });
    c.bench_function("packed_conv_8bit_4x16x16x16", |b| {
        b.iter(|| std::hint::black_box(packed.forward_at(1, &x)))
    });
    c.bench_function("packed_conv_16bit_4x16x16x16", |b| {
        b.iter(|| std::hint::black_box(packed.forward_at(2, &x)))
    });
    c.bench_function("packed_conv_4bit_4x16x16x16_widen", |b| {
        with_fused_gemm(false, || {
            b.iter(|| std::hint::black_box(packed.forward_at(0, &x)))
        })
    });
    c.bench_function("packed_conv_4bit_4x16x16x16_scalar", |b| {
        with_simd_backend(SimdBackend::Scalar, || {
            b.iter(|| std::hint::black_box(packed.forward_at(0, &x)))
        })
    });
    c.bench_function("packed_conv_16bit_4x16x16x16_scalar", |b| {
        with_simd_backend(SimdBackend::Scalar, || {
            b.iter(|| std::hint::black_box(packed.forward_at(2, &x)))
        })
    });
    c.bench_function("fakequant_conv_4bit_4x16x16x16", |b| {
        b.iter(|| {
            let mut ctx = ForwardCtx::eval(&bits, 0, Quantizer::Sbm);
            std::hint::black_box(conv.forward(&Var::constant(x.clone()), &mut ctx).value())
        })
    });
    // groups == C == K: the direct-tap depthwise fast path (no im2col).
    let dw = QuantConv2d::new(&mut rng, "dw", 32, 32, 3, 1, 1, 32, true);
    let xdw = init::uniform(&mut rng, &[4, 32, 16, 16], -0.3, 1.2);
    let packed_dw = PackedModel::prepack(&dw, &bits, Quantizer::Sbm).unwrap();
    c.bench_function("packed_depthwise_4bit_4x32x16x16", |b| {
        b.iter(|| std::hint::black_box(packed_dw.forward_at(0, &xdw)))
    });
}

fn bench_switch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let layer = QuantLinear::new(&mut rng, "fc", 256, 256);
    let bits = BitWidthSet::large_range();
    let mut packed = PackedModel::prepack(&layer, &bits, Quantizer::Sbm).unwrap();
    let n = bits.len();
    let mut i = 0usize;
    c.bench_function("bit_width_switch", |b| {
        b.iter(|| {
            i = (i + 1) % n;
            packed.switch_to(i).unwrap();
            std::hint::black_box(packed.active_bits())
        })
    });
}

criterion_group! {
    name = infer;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_conv, bench_switch
}
criterion_main!(infer);
