//! Table III: CDT vs independently trained SBM on ResNet-74, CIFAR-10/100,
//! bit sets {4,8,12,16,32} and {4,5,6,8}.
//!
//! Reproduction scale: ResNet-74 topology (6·12+2 layers) at width 0.25.
//! Claim checked: CDT ≥ SBM with the largest gain at 4-bit, and the deeper
//! network keeps the trend of Table II.

use instantnet_bench::cdt_vs_sbm;
use instantnet_nn::models;

fn main() {
    cdt_vs_sbm::run(
        "Table III (reproduction) — ResNet-74-scaled",
        "table3",
        "ResNet-74/CIFAR-10 4-bit: SBM 91.82 vs CDT 92.34 (+0.52); CIFAR-100 4-bit: 66.31 vs 67.35 (+1.04)",
        12,
        1,
        4,
        |ds, n_bits, seed| {
            models::resnet74(0.25, ds.num_classes(), (ds.hw(), ds.hw()), n_bits, seed)
        },
    );
}
