//! CI bench-regression gate: compares freshly generated `BENCH_<group>.json`
//! snapshots against committed baselines and fails (exit 1) when any
//! benchmark's median regresses by more than the allowed ratio (default 2×,
//! wide enough to absorb shared-runner noise while catching real
//! regressions).
//!
//! Usage: `bench_check <baseline-dir> <current-dir> [max-ratio]`
//!
//! Groups or benchmarks present in the baseline but absent from the current
//! run are reported and skipped (renames should update the baseline in the
//! same change), as are sub-100 ns medians, which are pure timer noise.
//! When both sides of a comparison carry the recording runner's `"cores"`
//! stamp and the counts differ, the entry is skipped with a notice — a
//! median from an 8-core box is not a regression baseline for a 1-core
//! runner. Entries predating the stamp compare unconditionally.
//!
//! Several groups carry extra within-run ratio checks (per-median ratios
//! absorb machine drift; these cannot):
//!
//! * infer: on hosts where the checker itself detects AVX2, the SIMD
//!   16-bit GEMM must be at least 1.5× its forced-scalar twin, 4-bit
//!   GEMM must not be slower than 8-bit (the precision/latency ordering
//!   the whole serving stack exploits), and the fused 4-bit GEMM must be
//!   at least 1.5× the widen-then-multiply 8-bit path (`_widen` twin) —
//!   the fused multiply-on-packed-codes win. Skipped with a notice on
//!   non-AVX2 runners, where both sides run the same scalar kernels;
//! * serving: batch-16 request aggregation must keep at least 2× the
//!   requests/sec of batch-1 serving on the same 48 requests — if it
//!   decays, the batching amortization itself (shared weight decode, one
//!   parallel region per batch) has regressed;
//! * resilience: the fault-free resilient path must stay within 1.1× of
//!   plain batched serving — resilience is supposed to be bookkeeping on
//!   top of the same forwards, never a second serving implementation;
//! * sharding: 4 replicas must drain the same burst in at most 1/2.5 the
//!   *simulated* steps one replica needs (the `sharded_drain_replicas*`
//!   entries are deterministic makespans, not wall clock, so this floor
//!   holds on any host) — if it decays, dispatch has stopped spreading
//!   load across the fleet;
//! * reload: a wall-clock run that hot-swaps its model mid-drain must
//!   sustain within 1.1× of the never-reloading run — a publish is a
//!   pointer swap plus one O(1) re-pin per worker, never a stall.
//!
//! Floors that are host-gated (AVX2 detection, core count) skip with a
//! notice where the gate fails; a single end-of-run summary block replays
//! every gated floor with its RAN pass / RAN FAIL / SKIPPED (reason)
//! status, so one glance at the log tail shows which guarantees this run
//! actually exercised.
//!
//! On failure every offending group/benchmark is listed by name with its
//! measured-vs-baseline (or within-run) ratio, so a CI log is enough to
//! diagnose which bench moved and by how much.

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

/// Parses the criterion shim's snapshot format: one benchmark per line,
/// `{"name": "...", "mean_ns": ..., "median_ns": ..., ...}`.
fn parse_medians(path: &Path) -> Result<HashMap<String, f64>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let mut out = HashMap::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else {
            continue;
        };
        let median = field_num(line, "\"median_ns\": ")
            .ok_or_else(|| format!("{}: benchmark {name} has no median_ns", path.display()))?;
        out.insert(name, median);
    }
    if out.is_empty() {
        return Err(format!("{}: no benchmarks found", path.display()));
    }
    Ok(out)
}

/// Per-entry `"cores"` metadata (runner core count at record time), for
/// snapshots new enough to carry it. Entries without the field — every
/// baseline recorded before the stamp existed — are simply absent, and
/// the caller compares them unconditionally as before.
fn parse_cores(path: &Path) -> HashMap<String, u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return HashMap::new();
    };
    let mut out = HashMap::new();
    for line in text.lines() {
        if let (Some(name), Some(cores)) = (
            field_str(line, "\"name\": \""),
            field_num(line, "\"cores\": "),
        ) {
            out.insert(name, cores as u64);
        }
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_check <baseline-dir> <current-dir> [max-ratio]");
        return ExitCode::FAILURE;
    }
    let (baseline_dir, current_dir) = (Path::new(&args[1]), Path::new(&args[2]));
    let max_ratio: f64 = args
        .get(3)
        .map(|s| s.parse().expect("max-ratio must be a number"))
        .unwrap_or(2.0);
    // Below this, a median is timer noise (e.g. the pointer-swap switch
    // benchmark), not a meaningful regression signal.
    const NOISE_FLOOR_NS: f64 = 100.0;

    let mut snapshots: Vec<String> = std::fs::read_dir(baseline_dir)
        .expect("baseline dir must be readable")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(name)
        })
        .collect();
    snapshots.sort();
    assert!(
        !snapshots.is_empty(),
        "no BENCH_*.json baselines in {}",
        baseline_dir.display()
    );

    // Each failure is recorded as a human-readable line naming the group,
    // the benchmark, and the offending ratio — replayed in the exit
    // summary so the CI log alone identifies what regressed.
    let mut failures: Vec<String> = Vec::new();
    // Host-gated floors additionally record their fate here — (floor name,
    // "RAN pass" | "RAN FAIL" | "SKIPPED (reason)") — replayed as one
    // summary block at the end of the run (pass or fail), so skipped
    // guarantees are visible without scanning the whole log.
    let mut gates: Vec<(String, String)> = Vec::new();
    for file in &snapshots {
        let current_path = current_dir.join(file);
        if !current_path.exists() {
            println!("{file}: no current snapshot (group not re-run), skipping");
            continue;
        }
        let baseline = parse_medians(&baseline_dir.join(file)).unwrap();
        let current = parse_medians(&current_path).unwrap();
        let baseline_cores = parse_cores(&baseline_dir.join(file));
        let current_cores = parse_cores(&current_path);
        let mut names: Vec<&String> = baseline.keys().collect();
        names.sort();
        for name in names {
            let base = baseline[name];
            let Some(&cur) = current.get(name) else {
                println!("{file}: {name} missing from current run, skipping");
                continue;
            };
            // Like-for-like only: a median recorded on an 8-core box says
            // nothing about a 1-core runner's number. Entries predating the
            // cores stamp compare unconditionally, as before.
            if let (Some(&bc), Some(&cc)) = (baseline_cores.get(name), current_cores.get(name)) {
                if bc != cc {
                    println!(
                        "{file}: {name} recorded on {bc} core(s), current runner has {cc}, \
                         skipping (not like-for-like)"
                    );
                    continue;
                }
            }
            if base.max(cur) < NOISE_FLOOR_NS {
                println!("{file}: {name} below noise floor ({base:.0} -> {cur:.0} ns), skipping");
                continue;
            }
            let ratio = cur / base;
            let verdict = if ratio > max_ratio {
                failures.push(format!(
                    "{file}: {name} regressed {ratio:.2}x vs baseline \
                     ({base:.0} -> {cur:.0} ns, allowed {max_ratio}x)"
                ));
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "{file}: {name:<40} {base:>12.0} -> {cur:>12.0} ns  ({ratio:>5.2}x) {verdict}"
            );
        }
    }

    // Within-run SIMD-win floor: the `_scalar` twins run the same forward
    // with kernels forced portable, so the ratio isolates the AVX2 kernel
    // speedup from machine drift. Only meaningful where the dispatcher
    // actually selects AVX2 — probed here with the same detection macro
    // the engine uses (the checker runs on the same host as the bench).
    const SIMD_MIN_SPEEDUP: f64 = 1.5;
    // 4-bit may be at most this much slower than 8-bit: nominally 1.0
    // (the paper's premise — fewer bits must not run slower), with 5%
    // slack for runner noise between the two medians.
    const LOW_BIT_MAX_RATIO: f64 = 1.05;
    // The fused multiply-on-packed-codes 4-bit GEMM must beat the
    // widen-then-multiply 8-bit path it replaces by this much — the
    // low-bit advantage fused kernels exist to deliver.
    const FUSED_MIN_SPEEDUP: f64 = 1.5;
    let infer_path = current_dir.join("BENCH_infer.json");
    if infer_path.exists() {
        #[cfg(target_arch = "x86_64")]
        let avx2 = std::arch::is_x86_feature_detected!("avx2");
        #[cfg(not(target_arch = "x86_64"))]
        let avx2 = false;
        if !avx2 {
            println!(
                "BENCH_infer.json: no AVX2 on this runner, skipping SIMD speedup, \
                 4-vs-8-bit ordering, and fused-GEMM floors (scalar backend on \
                 both sides)"
            );
            let reason = "SKIPPED (no AVX2 on this runner)".to_string();
            gates.push(("infer: SIMD vs scalar 16-bit GEMM".into(), reason.clone()));
            gates.push(("infer: 4-bit vs 8-bit GEMM ordering".into(), reason.clone()));
            gates.push(("infer: fused 4-bit vs widen 8-bit GEMM".into(), reason));
        } else {
            let infer = parse_medians(&infer_path).unwrap();
            match (
                infer.get("packed_gemm_16bit_64x256x256_scalar"),
                infer.get("packed_gemm_16bit_64x256x256"),
            ) {
                (Some(&scalar), Some(&simd)) => {
                    let speedup = scalar / simd;
                    let verdict = if speedup < SIMD_MIN_SPEEDUP {
                        failures.push(format!(
                            "BENCH_infer.json: SIMD 16-bit GEMM only {speedup:.2}x the scalar \
                             kernels (floor {SIMD_MIN_SPEEDUP}x on AVX2 hosts)"
                        ));
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "BENCH_infer.json: SIMD vs scalar 16-bit GEMM {speedup:>5.2}x \
                         (floor {SIMD_MIN_SPEEDUP}x) {verdict}"
                    );
                    gates.push((
                        "infer: SIMD vs scalar 16-bit GEMM".into(),
                        if verdict == "ok" {
                            format!("RAN pass ({speedup:.2}x >= {SIMD_MIN_SPEEDUP}x)")
                        } else {
                            format!("RAN FAIL ({speedup:.2}x < {SIMD_MIN_SPEEDUP}x)")
                        },
                    ));
                }
                _ => {
                    failures.push(
                        "BENCH_infer.json: packed_gemm_16bit_64x256x256[_scalar] missing, \
                         cannot check SIMD speedup"
                            .to_string(),
                    );
                    println!(
                        "BENCH_infer.json: packed_gemm_16bit_64x256x256[_scalar] missing, \
                         cannot check SIMD speedup: REGRESSED"
                    );
                    gates.push((
                        "infer: SIMD vs scalar 16-bit GEMM".into(),
                        "RAN FAIL (entries missing)".into(),
                    ));
                }
            }
            match (
                infer.get("packed_gemm_4bit_64x256x256"),
                infer.get("packed_gemm_8bit_64x256x256"),
            ) {
                (Some(&b4), Some(&b8)) => {
                    let ratio = b4 / b8;
                    let verdict = if ratio > LOW_BIT_MAX_RATIO {
                        failures.push(format!(
                            "BENCH_infer.json: 4-bit GEMM is {ratio:.2}x the 8-bit GEMM \
                             (must be no slower than {LOW_BIT_MAX_RATIO}x on AVX2 hosts)"
                        ));
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "BENCH_infer.json: 4-bit vs 8-bit GEMM {ratio:>5.2}x \
                         (ceiling {LOW_BIT_MAX_RATIO}x) {verdict}"
                    );
                    gates.push((
                        "infer: 4-bit vs 8-bit GEMM ordering".into(),
                        if verdict == "ok" {
                            format!("RAN pass ({ratio:.2}x <= {LOW_BIT_MAX_RATIO}x)")
                        } else {
                            format!("RAN FAIL ({ratio:.2}x > {LOW_BIT_MAX_RATIO}x)")
                        },
                    ));
                }
                _ => {
                    failures.push(
                        "BENCH_infer.json: packed_gemm_{{4,8}}bit_64x256x256 missing, \
                         cannot check low-bit ordering"
                            .to_string(),
                    );
                    println!(
                        "BENCH_infer.json: packed_gemm_{{4,8}}bit_64x256x256 missing, \
                         cannot check low-bit ordering: REGRESSED"
                    );
                    gates.push((
                        "infer: 4-bit vs 8-bit GEMM ordering".into(),
                        "RAN FAIL (entries missing)".into(),
                    ));
                }
            }
            match (
                infer.get("packed_gemm_4bit_64x256x256"),
                infer.get("packed_gemm_8bit_64x256x256_widen"),
            ) {
                (Some(&fused4), Some(&widen8)) => {
                    let speedup = widen8 / fused4;
                    let verdict = if speedup < FUSED_MIN_SPEEDUP {
                        failures.push(format!(
                            "BENCH_infer.json: fused 4-bit GEMM only {speedup:.2}x the \
                             widen-then-multiply 8-bit path (floor {FUSED_MIN_SPEEDUP}x \
                             on AVX2 hosts)"
                        ));
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "BENCH_infer.json: fused 4-bit vs widen 8-bit GEMM {speedup:>5.2}x \
                         (floor {FUSED_MIN_SPEEDUP}x) {verdict}"
                    );
                    gates.push((
                        "infer: fused 4-bit vs widen 8-bit GEMM".into(),
                        if verdict == "ok" {
                            format!("RAN pass ({speedup:.2}x >= {FUSED_MIN_SPEEDUP}x)")
                        } else {
                            format!("RAN FAIL ({speedup:.2}x < {FUSED_MIN_SPEEDUP}x)")
                        },
                    ));
                }
                _ => {
                    failures.push(
                        "BENCH_infer.json: packed_gemm_4bit_64x256x256 / \
                         packed_gemm_8bit_64x256x256_widen missing, cannot check \
                         fused-GEMM speedup"
                            .to_string(),
                    );
                    println!(
                        "BENCH_infer.json: packed_gemm_4bit_64x256x256 / \
                         packed_gemm_8bit_64x256x256_widen missing, cannot check \
                         fused-GEMM speedup: REGRESSED"
                    );
                    gates.push((
                        "infer: fused 4-bit vs widen 8-bit GEMM".into(),
                        "RAN FAIL (entries missing)".into(),
                    ));
                }
            }
        }
    }

    // Within-run batching-throughput floor: both configurations serve the
    // same 48 requests, so median times compare per-request cost directly.
    const SERVING_MIN_SPEEDUP: f64 = 2.0;
    let serving_path = current_dir.join("BENCH_serving.json");
    if serving_path.exists() {
        let serving = parse_medians(&serving_path).unwrap();
        match (
            serving.get("serving_batch1"),
            serving.get("serving_batch16"),
        ) {
            (Some(&b1), Some(&b16)) => {
                let speedup = b1 / b16;
                let verdict = if speedup < SERVING_MIN_SPEEDUP {
                    failures.push(format!(
                        "BENCH_serving.json: serving_batch16 throughput only {speedup:.2}x \
                         serving_batch1 (floor {SERVING_MIN_SPEEDUP}x)"
                    ));
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "BENCH_serving.json: batch-16 vs batch-1 throughput {speedup:>5.2}x \
                     (floor {SERVING_MIN_SPEEDUP}x) {verdict}"
                );
            }
            _ => {
                failures.push(
                    "BENCH_serving.json: serving_batch1/serving_batch16 missing, \
                     cannot check batching speedup"
                        .to_string(),
                );
                println!(
                    "BENCH_serving.json: serving_batch1/serving_batch16 missing, \
                     cannot check batching speedup: REGRESSED"
                );
            }
        }
    }

    // Within-run resilience-overhead ceiling: the fault-free resilient
    // path serves the same requests as the plain batched path and must
    // stay bit-identical to it, so its machinery (admission checks,
    // per-request status, the catch_unwind fence) may cost at most 10%.
    const RESILIENCE_MAX_OVERHEAD: f64 = 1.1;
    let resilience_path = current_dir.join("BENCH_resilience.json");
    if resilience_path.exists() {
        let resilience = parse_medians(&resilience_path).unwrap();
        match (
            resilience.get("resilience_off"),
            resilience.get("resilience_defaults"),
        ) {
            (Some(&off), Some(&defaults)) => {
                let overhead = defaults / off;
                let verdict = if overhead > RESILIENCE_MAX_OVERHEAD {
                    failures.push(format!(
                        "BENCH_resilience.json: fault-free resilient path costs {overhead:.2}x \
                         the batched path (ceiling {RESILIENCE_MAX_OVERHEAD}x)"
                    ));
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "BENCH_resilience.json: fault-free resilient vs batched overhead \
                     {overhead:>5.2}x (ceiling {RESILIENCE_MAX_OVERHEAD}x) {verdict}"
                );
            }
            _ => {
                failures.push(
                    "BENCH_resilience.json: resilience_off/resilience_defaults missing, \
                     cannot check resilience overhead"
                        .to_string(),
                );
                println!(
                    "BENCH_resilience.json: resilience_off/resilience_defaults missing, \
                     cannot check resilience overhead: REGRESSED"
                );
            }
        }
    }

    // Within-run sharding-capacity floor: the drain entries are simulated
    // makespans (steps × a fixed ns/step), deterministic on any host, so
    // 4 replicas must genuinely multiply serving capacity — not merely
    // tie wall clock on a core-starved runner.
    const SHARDING_MIN_SPEEDUP: f64 = 2.5;
    let sharding_path = current_dir.join("BENCH_sharding.json");
    if sharding_path.exists() {
        let sharding = parse_medians(&sharding_path).unwrap();
        match (
            sharding.get("sharded_drain_replicas1"),
            sharding.get("sharded_drain_replicas4"),
        ) {
            (Some(&r1), Some(&r4)) => {
                let speedup = r1 / r4;
                let verdict = if speedup < SHARDING_MIN_SPEEDUP {
                    failures.push(format!(
                        "BENCH_sharding.json: 4-replica drain only {speedup:.2}x the 1-replica \
                         drain (floor {SHARDING_MIN_SPEEDUP}x)"
                    ));
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "BENCH_sharding.json: 4-replica vs 1-replica drain throughput {speedup:>5.2}x \
                     (floor {SHARDING_MIN_SPEEDUP}x) {verdict}"
                );
            }
            _ => {
                failures.push(
                    "BENCH_sharding.json: sharded_drain_replicas1/sharded_drain_replicas4 \
                     missing, cannot check sharding speedup"
                        .to_string(),
                );
                println!(
                    "BENCH_sharding.json: sharded_drain_replicas1/sharded_drain_replicas4 \
                     missing, cannot check sharding speedup: REGRESSED"
                );
            }
        }
    }

    // Within-run wall-clock-scaling floor: the sustained entries are real
    // measured service times (elapsed / served) from the threaded loop, so
    // they only scale where the hardware can actually run 4 workers at
    // once. On narrower runners the workers serialize and the floor is
    // skipped — the snapshot still records the honest numbers.
    const WALLCLOCK_MIN_SPEEDUP: f64 = 2.5;
    // The sharded queue with stealing must beat the single shared queue by
    // this much on the skewed max-batch-1 burst — the pop-contention win
    // the sharded fast path exists to deliver. Like the worker-scaling
    // floor it only shows up where 4 workers genuinely run concurrently.
    const SHARDED_QUEUE_MIN_SPEEDUP: f64 = 1.3;
    let wallclock_path = current_dir.join("BENCH_wallclock.json");
    if wallclock_path.exists() {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        if cores < 4 {
            println!(
                "BENCH_wallclock.json: only {cores} core(s) on this runner, skipping \
                 wall-clock worker-scaling and sharded-queue floors (need 4)"
            );
            let reason = format!("SKIPPED (only {cores} core(s), needs 4)");
            gates.push((
                "wallclock: 4-worker vs 1-worker scaling".into(),
                reason.clone(),
            ));
            gates.push(("wallclock: sharded vs shared skew queue".into(), reason));
        } else {
            let wallclock = parse_medians(&wallclock_path).unwrap();
            match (
                wallclock.get("wallclock_sustained_workers1"),
                wallclock.get("wallclock_sustained_workers4"),
            ) {
                (Some(&w1), Some(&w4)) => {
                    let speedup = w1 / w4;
                    let verdict = if speedup < WALLCLOCK_MIN_SPEEDUP {
                        failures.push(format!(
                            "BENCH_wallclock.json: 4-worker sustained throughput only \
                             {speedup:.2}x the 1-worker loop (floor {WALLCLOCK_MIN_SPEEDUP}x)"
                        ));
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "BENCH_wallclock.json: 4-worker vs 1-worker sustained throughput \
                         {speedup:>5.2}x (floor {WALLCLOCK_MIN_SPEEDUP}x) {verdict}"
                    );
                    gates.push((
                        "wallclock: 4-worker vs 1-worker scaling".into(),
                        if verdict == "ok" {
                            format!("RAN pass ({speedup:.2}x >= {WALLCLOCK_MIN_SPEEDUP}x)")
                        } else {
                            format!("RAN FAIL ({speedup:.2}x < {WALLCLOCK_MIN_SPEEDUP}x)")
                        },
                    ));
                }
                _ => {
                    failures.push(
                        "BENCH_wallclock.json: wallclock_sustained_workers1/4 missing, \
                         cannot check wall-clock scaling"
                            .to_string(),
                    );
                    println!(
                        "BENCH_wallclock.json: wallclock_sustained_workers1/4 missing, \
                         cannot check wall-clock scaling: REGRESSED"
                    );
                    gates.push((
                        "wallclock: 4-worker vs 1-worker scaling".into(),
                        "RAN FAIL (entries missing)".into(),
                    ));
                }
            }
            match (
                wallclock.get("wallclock_sustained_skew_shared4"),
                wallclock.get("wallclock_sustained_skew_sharded4"),
            ) {
                (Some(&shared), Some(&sharded)) => {
                    let speedup = shared / sharded;
                    let verdict = if speedup < SHARDED_QUEUE_MIN_SPEEDUP {
                        failures.push(format!(
                            "BENCH_wallclock.json: sharded queue only {speedup:.2}x the shared \
                             queue on the skewed burst (floor {SHARDED_QUEUE_MIN_SPEEDUP}x)"
                        ));
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "BENCH_wallclock.json: sharded vs shared skew-burst throughput \
                         {speedup:>5.2}x (floor {SHARDED_QUEUE_MIN_SPEEDUP}x) {verdict}"
                    );
                    gates.push((
                        "wallclock: sharded vs shared skew queue".into(),
                        if verdict == "ok" {
                            format!("RAN pass ({speedup:.2}x >= {SHARDED_QUEUE_MIN_SPEEDUP}x)")
                        } else {
                            format!("RAN FAIL ({speedup:.2}x < {SHARDED_QUEUE_MIN_SPEEDUP}x)")
                        },
                    ));
                }
                _ => {
                    failures.push(
                        "BENCH_wallclock.json: wallclock_sustained_skew_shared4/sharded4 \
                         missing, cannot check sharded-queue speedup"
                            .to_string(),
                    );
                    println!(
                        "BENCH_wallclock.json: wallclock_sustained_skew_shared4/sharded4 \
                         missing, cannot check sharded-queue speedup: REGRESSED"
                    );
                    gates.push((
                        "wallclock: sharded vs shared skew queue".into(),
                        "RAN FAIL (entries missing)".into(),
                    ));
                }
            }
        }
    }

    // Within-run reload-overhead ceiling: a mid-drain publish re-pins
    // each worker once (an O(1) Arc clone at its next batch boundary),
    // so a run that hot-swaps its model must sustain within 10% of the
    // never-reloading run — the same bookkeeping ceiling the resilient
    // path lives under. Both entries are real measured service times
    // from the same host in the same run, so the ratio holds anywhere.
    const RELOAD_MAX_OVERHEAD: f64 = 1.1;
    let reload_path = current_dir.join("BENCH_reload.json");
    if reload_path.exists() {
        let reload = parse_medians(&reload_path).unwrap();
        match (reload.get("reload_off"), reload.get("reload_on")) {
            (Some(&off), Some(&on)) => {
                let overhead = on / off;
                let verdict = if overhead > RELOAD_MAX_OVERHEAD {
                    failures.push(format!(
                        "BENCH_reload.json: mid-drain hot reload costs {overhead:.2}x \
                         the never-reloading run (ceiling {RELOAD_MAX_OVERHEAD}x)"
                    ));
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!(
                    "BENCH_reload.json: hot-reload vs frozen sustained overhead \
                     {overhead:>5.2}x (ceiling {RELOAD_MAX_OVERHEAD}x) {verdict}"
                );
            }
            _ => {
                failures.push(
                    "BENCH_reload.json: reload_off/reload_on missing, \
                     cannot check reload overhead"
                        .to_string(),
                );
                println!(
                    "BENCH_reload.json: reload_off/reload_on missing, \
                     cannot check reload overhead: REGRESSED"
                );
            }
        }
    }

    // One block, always at the tail: the fate of every host-gated floor
    // this run, so a CI log shows at a glance which hardware-dependent
    // guarantees were actually exercised and which were skipped (and why).
    if !gates.is_empty() {
        println!("gated floor summary:");
        for (name, fate) in &gates {
            println!("  {name:<45} {fate}");
        }
    }

    if failures.is_empty() {
        println!("all benchmarks within {max_ratio}x of baseline");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} benchmark check(s) failed:", failures.len());
        for line in &failures {
            eprintln!("  {line}");
        }
        ExitCode::FAILURE
    }
}
