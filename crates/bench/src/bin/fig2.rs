//! Fig. 2: prediction distributions of a MobileNetV2-style SP-Net on one
//! test image — 4-bit trained with vanilla (highest-bit-only) distillation
//! vs 4-bit trained with CDT vs the 32-bit network.
//!
//! The paper's observation: vanilla distillation fails to close the 4-bit /
//! 32-bit gap on depthwise models, while CDT makes the 4-bit distribution
//! track the 32-bit one. We reproduce it as ASCII bar charts plus the
//! distributions' total-variation distance to the 32-bit reference.

use instantnet_bench::write_csv;
use instantnet_data::{Dataset, DatasetSpec};
use instantnet_nn::models;
use instantnet_quant::{BitWidthSet, Quantizer};
use instantnet_train::{prediction_distribution, PrecisionLadder, Strategy, TrainConfig, Trainer};

fn bar_chart(title: &str, dist: &[f32]) {
    println!("\n{title}");
    for (class, &p) in dist.iter().enumerate() {
        let bar = "#".repeat((p * 60.0).round() as usize);
        println!("  class {class:>2} {:>5.1}% |{bar}", 100.0 * p);
    }
}

fn tv_distance(a: &[f32], b: &[f32]) -> f32 {
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>()
}

fn main() {
    let ds = Dataset::generate(&DatasetSpec::cifar100_like());
    let bits = BitWidthSet::large_range();
    let ladder = PrecisionLadder::uniform(&bits);
    let cfg = TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    };
    let build = |seed| {
        models::mobilenet_v2(
            0.12,
            4,
            ds.num_classes(),
            (ds.hw(), ds.hw()),
            bits.len(),
            seed,
        )
    };

    println!("training with vanilla distillation (SP-style, 32-bit teacher only)...");
    let vanilla_net = build(5);
    Trainer::new(cfg).train(&vanilla_net, &ds, &ladder, Strategy::sp_net());
    println!("training with CDT (cascade of all higher-bit teachers)...");
    let cdt_net = build(5);
    Trainer::new(cfg).train(&cdt_net, &ds, &ladder, Strategy::cdt());

    let sample = 0;
    let q = Quantizer::Sbm;
    let vanilla4 = prediction_distribution(&vanilla_net, ds.test(), sample, &ladder, 0, q);
    let cdt4 = prediction_distribution(&cdt_net, ds.test(), sample, &ladder, 0, q);
    let cdt32 = prediction_distribution(&cdt_net, ds.test(), sample, &ladder, bits.len() - 1, q);
    let truth = ds.test().label(sample);
    println!("\ntest sample {sample} (true class {truth})");
    bar_chart("(left) 4-bit, vanilla distillation:", &vanilla4);
    bar_chart("(middle) 4-bit, CDT:", &cdt4);
    bar_chart("(right) 32-bit:", &cdt32);

    let d_vanilla = tv_distance(&vanilla4, &cdt32);
    let d_cdt = tv_distance(&cdt4, &cdt32);
    println!("\ntotal-variation distance to the 32-bit distribution:");
    println!("  vanilla 4-bit: {d_vanilla:.3}");
    println!("  CDT 4-bit:     {d_cdt:.3}");
    println!(
        "paper claim: CDT's 4-bit distribution 'smoothly evolves' toward 32-bit -> expect CDT distance < vanilla distance (got {})",
        if d_cdt < d_vanilla { "YES" } else { "NO" }
    );
    let rows: Vec<Vec<String>> = (0..ds.num_classes())
        .map(|c| {
            vec![
                c.to_string(),
                vanilla4[c].to_string(),
                cdt4[c].to_string(),
                cdt32[c].to_string(),
            ]
        })
        .collect();
    write_csv(
        "fig2",
        &["class", "vanilla_4bit", "cdt_4bit", "fp_32bit"],
        &rows,
    );
}
