//! Fig. 5: AutoMapper vs SOTA expert-crafted and tool-generated dataflows
//! on FPGA and ASIC.
//!
//! * ASIC (Eyeriss-like): AutoMapper vs Eyeriss row-stationary and
//!   MAGNet-style template search, on AlexNet and VGG16 (16-bit).
//! * FPGA (ZC706-like): AutoMapper vs DNNBuilder (pipelined) and CHaiDNN
//!   (multi-cycle), on AlexNet and VGG16.
//!
//! Claims checked: AutoMapper reduces EDP vs Eyeriss (paper: 65.76% on
//! AlexNet, 85.74% on VGG16), saves energy vs MAGNet (~9.3%), and wins on
//! both platforms with larger gains on ASIC.

use instantnet_automapper::{map_network, MapperConfig};
use instantnet_bench::{print_table, write_csv};
use instantnet_hwmodel::{baselines, evaluate_network, workloads_from_specs, Device, Workload};
use instantnet_nn::shapes;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn baseline_cost(name: &str, workloads: &[Workload], device: &Device, bits: u8) -> (f64, f64) {
    let total_macs: f64 = workloads.iter().map(|w| w.macs() as f64).sum();
    let mappings: Vec<_> = workloads
        .iter()
        .enumerate()
        .map(|(li, w)| match name {
            "eyeriss" => baselines::eyeriss_row_stationary(&w.dims, device, bits),
            "magnet" => {
                let mut rng = StdRng::seed_from_u64(li as u64);
                baselines::magnet_search(&w.dims, device, bits, 300, &mut rng)
            }
            "dnnbuilder" => {
                // Pipelined stages own a fabric slice; legalize against it.
                let stage = instantnet_hwmodel::cost::pipeline_stage_device(
                    device,
                    w.macs() as f64 / total_macs,
                );
                baselines::dnnbuilder_mapping(&w.dims, &stage, bits)
            }
            "chaidnn" => baselines::chaidnn_mapping(&w.dims, device, bits),
            other => panic!("unknown baseline {other}"),
        })
        .collect();
    let cost = evaluate_network(workloads, &mappings, device, bits).expect("legalized baselines");
    (cost.energy_pj, cost.edp())
}

fn main() {
    let bits = 16u8;
    let nets = [
        ("AlexNet", shapes::alexnet_convs()),
        ("VGG16", shapes::vgg16_convs()),
    ];
    let mapper_cfg = MapperConfig {
        max_evals: 400,
        ..MapperConfig::default()
    };
    let mut csv_rows = Vec::new();
    for (platform, device, baseline_names) in [
        ("ASIC", Device::eyeriss_like(), vec!["eyeriss", "magnet"]),
        ("FPGA", Device::zc706_like(), vec!["dnnbuilder", "chaidnn"]),
    ] {
        let mut rows = Vec::new();
        for (net_name, specs) in &nets {
            let workloads = workloads_from_specs(specs, 1);
            let (auto_mappings, auto_cost) = map_network(&workloads, &device, bits, &mapper_cfg);
            assert_eq!(auto_mappings.len(), workloads.len());
            let mut row = vec![net_name.to_string()];
            for b in &baseline_names {
                let (energy, edp) = baseline_cost(b, &workloads, &device, bits);
                let edp_red = 100.0 * (1.0 - auto_cost.edp() / edp);
                let e_red = 100.0 * (1.0 - auto_cost.energy_pj / energy);
                row.push(format!("{edp_red:.1}% EDP / {e_red:.1}% E"));
                csv_rows.push(vec![
                    platform.to_string(),
                    net_name.to_string(),
                    b.to_string(),
                    edp.to_string(),
                    energy.to_string(),
                    auto_cost.edp().to_string(),
                    auto_cost.energy_pj.to_string(),
                ]);
            }
            row.push(format!("{:.3e}", auto_cost.edp()));
            rows.push(row);
        }
        let mut header = vec!["network"];
        let h1 = format!("vs {}", baseline_names[0]);
        let h2 = format!("vs {}", baseline_names[1]);
        header.push(&h1);
        header.push(&h2);
        header.push("AutoMapper EDP");
        print_table(
            &format!("Fig. 5 (reproduction) — {platform}, savings of AutoMapper over baselines"),
            &header,
            &rows,
        );
    }
    println!("\npaper reference: AutoMapper vs Eyeriss EDP reduction 65.76% (AlexNet) / 85.74% (VGG16); ~9.3% energy vs MAGNet.");
    write_csv(
        "fig5",
        &[
            "platform",
            "network",
            "baseline",
            "baseline_edp",
            "baseline_energy",
            "automapper_edp",
            "automapper_energy",
        ],
        &csv_rows,
    );
}
