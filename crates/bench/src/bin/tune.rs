//! Dev tool: calibrates reproduction-scale training hyper-parameters
//! (not part of the paper's experiments). Currently probes whether
//! progressive-precision warm-up rescues deep-ResNet CDT training
//! (the Table III cifar10-like failure mode).

use instantnet_data::{Dataset, DatasetSpec};
use instantnet_nn::models;
use instantnet_quant::BitWidthSet;
use instantnet_train::{PrecisionLadder, Strategy, TrainConfig, Trainer};

fn main() {
    let ds = Dataset::generate(&DatasetSpec::cifar10_like());
    let bits = BitWidthSet::large_range();
    let ladder = PrecisionLadder::uniform(&bits);
    for warmup in [0usize, 4] {
        let net = models::resnet74(0.25, ds.num_classes(), (ds.hw(), ds.hw()), bits.len(), 7);
        let r = Trainer::new(TrainConfig {
            epochs: 12,
            warmup_epochs: warmup,
            ..TrainConfig::default()
        })
        .train(&net, &ds, &ladder, Strategy::cdt());
        println!(
            "resnet74 warmup {warmup}: 4b {:.1}% 8b {:.1}% 32b {:.1}%",
            100.0 * r.accuracy_per_rung[0],
            100.0 * r.accuracy_per_rung[1],
            100.0 * r.accuracy_per_rung[4],
        );
    }
}
