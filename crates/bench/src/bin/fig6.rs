//! Fig. 6: InstantNet-generated systems vs SOTA IoT systems on
//! CIFAR-10/100 under two bit-width sets — accuracy-vs-EDP trade-off on
//! the ASIC target.
//!
//! The baseline system is a manually designed SP-Net (fixed
//! MobileNetV2-style stack, SP vanilla-distillation training) deployed
//! with the Eyeriss expert dataflow; InstantNet is SP-NAS + CDT +
//! AutoMapper. Claims checked: InstantNet reduces EDP at every bit-width
//! with higher or comparable accuracy, and always wins at the bottleneck
//! (lowest) bit-width.

use instantnet::{baseline_system, Pipeline, PipelineConfig};
use instantnet_bench::{pct, print_table, write_csv};
use instantnet_data::{Dataset, DatasetSpec};
use instantnet_hwmodel::Device;
use instantnet_quant::BitWidthSet;

fn main() {
    let mut csv_rows = Vec::new();
    for spec in [DatasetSpec::cifar10_like(), DatasetSpec::cifar100_like()] {
        let ds = Dataset::generate(&spec);
        for (set_name, bits) in [
            ("{4,8,12,16,32}", BitWidthSet::large_range()),
            ("{4,5,6,8}", BitWidthSet::narrow_range()),
        ] {
            println!("{} / {set_name}: running InstantNet pipeline...", spec.name);
            let mut cfg = PipelineConfig::experiment(bits.clone(), Device::eyeriss_like());
            cfg.train.epochs = 5;
            cfg.nas.epochs = 2;
            cfg.mapper.max_evals = 250;
            let ours = Pipeline::new(cfg.clone()).run(&ds);
            println!(
                "{} / {set_name}: running manual SP-Net baseline...",
                spec.name
            );
            let base = baseline_system(&ds, &cfg);
            let mut rows = Vec::new();
            for (o, b) in ours.points().iter().zip(base.points()) {
                let edp_red = 100.0 * (1.0 - o.edp / b.edp);
                rows.push(vec![
                    o.bits.to_string(),
                    format!("{} / {:.2e}", pct(b.accuracy), b.edp),
                    format!("{} / {:.2e}", pct(o.accuracy), o.edp),
                    format!("{edp_red:.1}%"),
                    format!("{:+.2}", 100.0 * (o.accuracy - b.accuracy)),
                ]);
                csv_rows.push(vec![
                    spec.name.to_string(),
                    set_name.to_string(),
                    o.bits.get().to_string(),
                    b.accuracy.to_string(),
                    b.edp.to_string(),
                    o.accuracy.to_string(),
                    o.edp.to_string(),
                ]);
            }
            print_table(
                &format!(
                    "Fig. 6 (reproduction) — {} bit set {set_name} (arch {})",
                    spec.name,
                    ours.arch()
                ),
                &[
                    "bits",
                    "baseline acc/EDP",
                    "InstantNet acc/EDP",
                    "EDP red.",
                    "acc gain",
                ],
                &rows,
            );
        }
    }
    println!("\npaper reference: up to 84.67% EDP reduction with +1.44% accuracy (CIFAR-100, {{4,8,12,16,32}}); 62.5~73.68% EDP reduction at the lowest bit-width.");
    write_csv(
        "fig6",
        &[
            "dataset",
            "bit_set",
            "bits",
            "baseline_acc",
            "baseline_edp",
            "instantnet_acc",
            "instantnet_edp",
        ],
        &csv_rows,
    );
}
