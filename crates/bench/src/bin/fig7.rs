//! Fig. 7: InstantNet vs a SOTA FPGA IoT system on ImageNet with the
//! bit-width set {4,5,6,8} — frames-per-second and accuracy.
//!
//! Reproduction scale: the imagenet-like synthetic dataset on the
//! ZC706-like FPGA. The baseline is the manual SP-Net deployed with the
//! DNNBuilder pipelined dataflow (the paper's strongest FPGA competitor);
//! InstantNet searches both the network and the dataflow. Claim checked:
//! InstantNet improves FPS (paper: 1.86x) at comparable accuracy (-0.05%).

use instantnet::{Pipeline, PipelineConfig};
use instantnet_bench::{pct, print_table, write_csv};
use instantnet_data::{Dataset, DatasetSpec};
use instantnet_hwmodel::{baselines, evaluate_network, workloads_from_specs, Device};
use instantnet_quant::BitWidthSet;
use instantnet_train::{evaluate, PrecisionLadder, Strategy, TrainConfig, Trainer};

fn main() {
    let ds = Dataset::generate(&DatasetSpec::imagenet_like());
    let bits = BitWidthSet::narrow_range();
    let device = Device::zc706_like();
    let mut cfg = PipelineConfig::experiment(bits.clone(), device.clone());
    cfg.train.epochs = 6;
    cfg.nas.epochs = 2;
    cfg.mapper.max_evals = 300;

    println!("running InstantNet pipeline on {}...", device.name);
    let ours = Pipeline::new(cfg.clone()).run(&ds);

    println!("training manual SP-Net baseline + DNNBuilder dataflow...");
    let base_net = instantnet_nn::models::mobilenet_v2(
        0.15,
        3,
        ds.num_classes(),
        (ds.hw(), ds.hw()),
        bits.len(),
        cfg.seed,
    );
    let ladder = PrecisionLadder::uniform(&bits);
    Trainer::new(TrainConfig {
        epochs: 6,
        ..TrainConfig::default()
    })
    .train(&base_net, &ds, &ladder, Strategy::sp_net());
    let base_workloads = workloads_from_specs(&base_net.specs(), 1);
    let base_total_macs: f64 = base_workloads.iter().map(|w| w.macs() as f64).sum();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (i, &b) in bits.widths().iter().enumerate() {
        let hw_bits = b.get().min(16);
        let base_maps: Vec<_> = base_workloads
            .iter()
            .map(|w| {
                // DNNBuilder pipelines layer stages: legalize each against
                // its fabric slice, as evaluate_network will partition.
                let stage = instantnet_hwmodel::pipeline_stage_device(
                    &device,
                    w.macs() as f64 / base_total_macs,
                );
                baselines::dnnbuilder_mapping(&w.dims, &stage, hw_bits)
            })
            .collect();
        let base_cost = evaluate_network(&base_workloads, &base_maps, &device, hw_bits)
            .expect("legalized baseline");
        let base_acc = evaluate(&base_net, ds.test(), &ladder, i, cfg.quantizer, 16);
        let o = &ours.points()[i];
        rows.push(vec![
            b.to_string(),
            format!("{:.1} fps / {}%", base_cost.fps, pct(base_acc)),
            format!("{:.1} fps / {}%", o.fps, pct(o.accuracy)),
            format!("{:.2}x", o.fps / base_cost.fps),
        ]);
        csv_rows.push(vec![
            b.get().to_string(),
            base_cost.fps.to_string(),
            base_acc.to_string(),
            o.fps.to_string(),
            o.accuracy.to_string(),
        ]);
    }
    print_table(
        &format!(
            "Fig. 7 (reproduction) — imagenet-like on {}, arch {}",
            device.name,
            ours.arch()
        ),
        &["bits", "DNNBuilder system", "InstantNet", "FPS gain"],
        &rows,
    );
    println!("\npaper reference: 1.86x FPS at -0.05% accuracy vs the SOTA FPGA IoT system.");
    write_csv(
        "fig7",
        &[
            "bits",
            "baseline_fps",
            "baseline_acc",
            "instantnet_fps",
            "instantnet_acc",
        ],
        &csv_rows,
    );
}
