//! Table I: CDT vs SBM (independent per-bit training), SP and AdaBits on
//! MobileNetV2 / CIFAR-100, for the bit-width sets {4,8,12,16,32} and
//! {4,5,6,8}.
//!
//! Reproduction scale: width-scaled MobileNetV2 on the cifar100-like
//! synthetic dataset (see DESIGN.md §2). The claim checked is the paper's
//! relative one: CDT ≥ SP/AdaBits everywhere with the largest gap at the
//! lowest bit-width, and CDT ≥ independently trained SBM at low bits.

use instantnet_bench::{pct, print_table, write_csv};
use instantnet_data::{Dataset, DatasetSpec};
use instantnet_nn::models;
use instantnet_quant::BitWidthSet;
use instantnet_train::{train_independent, PrecisionLadder, Strategy, TrainConfig, Trainer};

fn main() {
    let ds = Dataset::generate(&DatasetSpec::cifar100_like());
    let cfg = TrainConfig {
        epochs: 10,
        ..TrainConfig::default()
    };
    let build = |n_bits: usize, seed: u64| {
        models::mobilenet_v2(0.12, 4, ds.num_classes(), (ds.hw(), ds.hw()), n_bits, seed)
    };
    const SEEDS: u64 = 3;
    let mut csv_rows = Vec::new();
    for (set_name, bits) in [
        ("{4,8,12,16,32}", BitWidthSet::large_range()),
        ("{4,5,6,8}", BitWidthSet::narrow_range()),
    ] {
        let ladder = PrecisionLadder::uniform(&bits);
        let avg = |runs: Vec<Vec<f32>>| -> Vec<f32> {
            let n = runs.len() as f32;
            (0..runs[0].len())
                .map(|i| runs.iter().map(|r| r[i]).sum::<f32>() / n)
                .collect()
        };
        println!("bit set {set_name}: training SBM-independent baseline ({SEEDS} seeds)...");
        let sbm = avg((0..SEEDS)
            .map(|s| {
                train_independent(
                    |i| build(1, 900 + s * 100 + i as u64),
                    &ds,
                    &ladder,
                    TrainConfig { seed: s, ..cfg },
                )
            })
            .collect());
        let mut results: Vec<(String, Vec<f32>)> = vec![("SBM".into(), sbm)];
        for strategy in [Strategy::sp_net(), Strategy::AdaBits, Strategy::cdt()] {
            println!(
                "bit set {set_name}: training {} ({SEEDS} seeds)...",
                strategy.label()
            );
            let accs = avg((0..SEEDS)
                .map(|s| {
                    let net = build(bits.len(), 7 + s);
                    Trainer::new(TrainConfig { seed: s, ..cfg })
                        .train(&net, &ds, &ladder, strategy)
                        .accuracy_per_rung
                })
                .collect());
            results.push((strategy.label().into(), accs));
        }
        let cdt = results.last().expect("cdt trained").1.clone();
        let mut rows = Vec::new();
        for (i, b) in bits.widths().iter().enumerate() {
            let mut row = vec![b.to_string()];
            for (name, accs) in &results {
                let cell = if name == "CDT" {
                    pct(accs[i])
                } else {
                    format!("{} ({:+.2})", pct(accs[i]), 100.0 * (accs[i] - cdt[i]))
                };
                row.push(cell);
            }
            csv_rows.push(vec![
                set_name.to_string(),
                b.get().to_string(),
                results[0].1[i].to_string(),
                results[1].1[i].to_string(),
                results[2].1[i].to_string(),
                cdt[i].to_string(),
            ]);
            rows.push(row);
        }
        print_table(
            &format!(
                "Table I (reproduction) — MobileNetV2-scaled, cifar100-like, bit set {set_name}"
            ),
            &["bits", "SBM", "SP", "AdaBits", "CDT"],
            &rows,
        );
        println!(
            "paper reference (MobileNetV2/CIFAR-100, 4-bit row): SBM 70.55, SP 66.75, AdaBits 68.07, CDT 71.15"
        );
    }
    write_csv(
        "table1",
        &["bit_set", "bits", "sbm", "sp", "adabits", "cdt"],
        &csv_rows,
    );
}
