//! Fig. 4: SP-NAS vs FP-NAS vs LP-NAS on CIFAR-100 under large / middle /
//! small FLOPs constraints, for both bit-width sets.
//!
//! Each search mode runs under three efficiency-loss strengths λ
//! (large FLOPs budget = small λ), the derived architecture is CDT-trained
//! from scratch, and per-bit-width accuracies plus FLOPs are reported.
//! Claim checked: SP-NAS wins at the lowest bit-width under every
//! constraint, with comparable or better accuracy at higher bit-widths.

use instantnet_bench::{pct, print_table, write_csv};
use instantnet_data::{Dataset, DatasetSpec};
use instantnet_nas::{search, NasConfig, SearchMode, SearchSpace};
use instantnet_quant::BitWidthSet;
use instantnet_train::{PrecisionLadder, Strategy, TrainConfig, Trainer};

fn main() {
    let ds = Dataset::generate(&DatasetSpec::cifar100_like());
    let space = SearchSpace::cifar_tiny(3);
    let train_cfg = TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    };
    let constraints = [("large", 0.05f32), ("middle", 0.5), ("small", 2.0)];
    let mut csv_rows = Vec::new();
    for (set_name, bits) in [
        ("{4,8,12,16,32}", BitWidthSet::large_range()),
        ("{4,5,6,8}", BitWidthSet::narrow_range()),
    ] {
        let ladder = PrecisionLadder::uniform(&bits);
        for (cname, lambda) in constraints {
            let mut rows = Vec::new();
            for mode in [SearchMode::SpNas, SearchMode::FpNas, SearchMode::LpNas] {
                println!(
                    "bit set {set_name}, {cname} constraint: {}...",
                    mode.label()
                );
                let nas_cfg = NasConfig {
                    epochs: 2,
                    lambda,
                    ..NasConfig::default()
                };
                let outcome = search(&space, &ds, &bits, mode, nas_cfg);
                let net = outcome.arch.build_network(ds.num_classes(), bits.len(), 11);
                let report = Trainer::new(train_cfg).train(&net, &ds, &ladder, Strategy::cdt());
                let mut row = vec![
                    mode.label().to_string(),
                    format!("{:.2}M", outcome.derived_flops as f64 / 1e6),
                ];
                for (i, acc) in report.accuracy_per_rung.iter().enumerate() {
                    row.push(pct(*acc));
                    csv_rows.push(vec![
                        set_name.to_string(),
                        cname.to_string(),
                        mode.label().to_string(),
                        outcome.derived_flops.to_string(),
                        bits.at(i).get().to_string(),
                        acc.to_string(),
                    ]);
                }
                rows.push(row);
            }
            let mut header: Vec<String> = vec!["mode".into(), "FLOPs".into()];
            header.extend(bits.widths().iter().map(|b| b.to_string()));
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            print_table(
                &format!("Fig. 4 (reproduction) — bit set {set_name}, {cname} FLOPs constraint"),
                &header_refs,
                &rows,
            );
        }
    }
    println!("\npaper claim: SP-NAS beats FP/LP-NAS by 0.71~1.16% at the lowest bit-width under all constraints.");
    write_csv(
        "fig4",
        &["bit_set", "constraint", "mode", "flops", "bits", "accuracy"],
        &csv_rows,
    );
}
