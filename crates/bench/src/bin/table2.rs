//! Table II: CDT vs independently trained SBM on ResNet-38, CIFAR-10/100,
//! bit sets {4,8,12,16,32} and {4,5,6,8}.
//!
//! Reproduction scale: ResNet-38 topology (6·6+2 layers) at width 0.25 on
//! the cifar-like synthetic datasets. The claim checked: CDT matches or
//! beats independent per-bit training everywhere, with the biggest gain at
//! the lowest bit-width.

use instantnet_bench::cdt_vs_sbm;
use instantnet_nn::models;

fn main() {
    cdt_vs_sbm::run(
        "Table II (reproduction) — ResNet-38-scaled",
        "table2",
        "ResNet-38/CIFAR-10 4-bit: SBM 90.91 vs CDT 91.45 (+0.54); CIFAR-100 4-bit: 63.82 vs 64.18 (+0.36)",
        12,
        1,
        0,
        |ds, n_bits, seed| {
            models::resnet38(0.25, ds.num_classes(), (ds.hw(), ds.hw()), n_bits, seed)
        },
    );
}
