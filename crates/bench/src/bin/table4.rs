//! Table IV: CDT vs SP at extreme 2-bit precision on ResNet-18 /
//! TinyImageNet, for mixed weight/activation settings (W,A) ∈
//! {(2,2), (2,32), (32,2)}.
//!
//! Reproduction scale: ResNet-18 topology at width 0.1 on the
//! tinyimagenet-like synthetic dataset. Each (W,A) row trains a 4-rung
//! switchable ladder climbing from the mixed 2-bit setting through 4- and
//! 8-bit intermediates to full precision. The intermediates are what
//! differentiates CDT (cascade of all higher rungs) from SP (full-precision
//! teacher only) — with a 2-rung ladder the two objectives coincide.
//! Claim checked: CDT gains over SP at the 2-bit rung, largest at W2A2.

use instantnet_bench::{pct, print_table, write_csv};
use instantnet_data::{Dataset, DatasetSpec};
use instantnet_nn::models;
use instantnet_quant::{BitWidth, Precision};
use instantnet_train::{PrecisionLadder, Strategy, TrainConfig, Trainer};

fn main() {
    let ds = Dataset::generate(&DatasetSpec::tiny_imagenet_like());
    let cfg = TrainConfig {
        epochs: 8,
        ..TrainConfig::default()
    };
    // (label, weight-bit ramp, activation-bit ramp): each ladder climbs the
    // quantized operand(s) through 2 -> 4 -> 8 -> 32 while the full-precision
    // operand stays at 32 bits.
    let settings: [(&str, [u8; 4], [u8; 4]); 3] = [
        ("W2A2", [2, 4, 8, 32], [2, 4, 8, 32]),
        ("W2A32", [2, 4, 8, 32], [32, 32, 32, 32]),
        ("W32A2", [32, 32, 32, 32], [2, 4, 8, 32]),
    ];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (name, wbits, abits) in settings {
        let ladder = PrecisionLadder::new(
            wbits
                .iter()
                .zip(&abits)
                .map(|(&w, &a)| Precision::new(BitWidth::new(w), BitWidth::new(a)))
                .collect(),
        );
        let mut accs = Vec::new();
        // At 2-bit the raw-logit MSE terms are large; a smaller beta keeps
        // the cascade from overwhelming the cross-entropy signal.
        for strategy in [Strategy::SpNet { beta: 0.05 }, Strategy::Cdt { beta: 0.05 }] {
            println!("{name}: training {}...", strategy.label());
            let net = models::resnet18(0.1, ds.num_classes(), (ds.hw(), ds.hw()), ladder.len(), 3);
            let report = Trainer::new(cfg).train(&net, &ds, &ladder, strategy);
            accs.push(report.accuracy_per_rung[0]);
        }
        rows.push(vec![
            name.to_string(),
            pct(accs[0]),
            format!("{} ({:+.1})", pct(accs[1]), 100.0 * (accs[1] - accs[0])),
        ]);
        csv_rows.push(vec![
            name.to_string(),
            accs[0].to_string(),
            accs[1].to_string(),
        ]);
    }
    print_table(
        "Table IV (reproduction) — ResNet-18-scaled, tinyimagenet-like",
        &["(W,A)", "SP", "CDT (gain)"],
        &rows,
    );
    println!("paper reference: W2A2 SP 47.8 vs CDT 52.3 (+4.5); W2A32 50.5 vs 51.3 (+0.8); W32A2 51.8 vs 53.4 (+1.6)");
    write_csv("table4", &["setting", "sp", "cdt"], &csv_rows);
}
