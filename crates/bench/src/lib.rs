//! Shared reporting helpers for the experiment binaries.
//!
//! Every binary regenerates one table or figure of the paper: it prints a
//! human-readable table with the paper's reference numbers alongside the
//! measured reproduction-scale numbers, and writes a machine-readable CSV
//! under `target/experiments/`.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Directory experiment CSVs are written to (`target/experiments`).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes a CSV with a header row.
///
/// # Panics
///
/// Panics on I/O errors — experiment binaries should fail loudly.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = out_dir().join(format!("{name}.csv"));
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    println!("\n[wrote {}]", path.display());
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
                + 2
        })
        .collect();
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}", c, w = widths[i]));
        }
        s
    };
    println!(
        "{}",
        line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!("{}", "-".repeat(widths.iter().sum()));
    for r in rows {
        println!("{}", line(r));
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f32) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Formats an accuracy delta in the paper's bracket style.
pub fn delta(baseline: f32, ours: f32) -> String {
    format!("({:+.2})", 100.0 * (baseline - ours))
}

/// Shared driver for Tables II and III: CDT vs independently trained SBM
/// on a ResNet, over CIFAR-10/100-like datasets and both bit-width sets.
pub mod cdt_vs_sbm {
    use super::{pct, print_table, write_csv};
    use instantnet_data::{Dataset, DatasetSpec};
    use instantnet_nn::models::Network;
    use instantnet_quant::BitWidthSet;
    use instantnet_train::{train_independent, PrecisionLadder, Strategy, TrainConfig, Trainer};

    /// Runs the comparison and writes `<csv_name>.csv`.
    ///
    /// `build(n_bits, seed)` constructs the model under test.
    pub fn run(
        table_name: &str,
        csv_name: &str,
        paper_ref: &str,
        epochs: usize,
        seeds: u64,
        warmup_epochs: usize,
        build: impl Fn(&Dataset, usize, u64) -> Network,
    ) {
        let cfg = TrainConfig {
            epochs,
            warmup_epochs,
            ..TrainConfig::default()
        };
        let mut csv_rows = Vec::new();
        for spec in [DatasetSpec::cifar10_like(), DatasetSpec::cifar100_like()] {
            let ds = Dataset::generate(&spec);
            for (set_name, bits) in [
                ("{4,8,12,16,32}", BitWidthSet::large_range()),
                ("{4,5,6,8}", BitWidthSet::narrow_range()),
            ] {
                let ladder = PrecisionLadder::uniform(&bits);
                let avg = |runs: Vec<Vec<f32>>| -> Vec<f32> {
                    let n = runs.len() as f32;
                    (0..runs[0].len())
                        .map(|i| runs.iter().map(|r| r[i]).sum::<f32>() / n)
                        .collect()
                };
                println!(
                    "{}/{set_name}: SBM-independent ({seeds} seeds)...",
                    spec.name
                );
                let sbm = avg((0..seeds)
                    .map(|s| {
                        train_independent(
                            |i| build(&ds, 1, 500 + s * 100 + i as u64),
                            &ds,
                            &ladder,
                            TrainConfig { seed: s, ..cfg },
                        )
                    })
                    .collect());
                println!("{}/{set_name}: CDT ({seeds} seeds)...", spec.name);
                let cdt = avg((0..seeds)
                    .map(|s| {
                        let net = build(&ds, bits.len(), 7 + s);
                        Trainer::new(TrainConfig { seed: s, ..cfg })
                            .train(&net, &ds, &ladder, Strategy::cdt())
                            .accuracy_per_rung
                    })
                    .collect());
                let mut rows = Vec::new();
                for (i, b) in bits.widths().iter().enumerate() {
                    rows.push(vec![
                        b.to_string(),
                        pct(sbm[i]),
                        format!("{} ({:+.2})", pct(cdt[i]), 100.0 * (cdt[i] - sbm[i])),
                    ]);
                    csv_rows.push(vec![
                        spec.name.to_string(),
                        set_name.to_string(),
                        b.get().to_string(),
                        sbm[i].to_string(),
                        cdt[i].to_string(),
                    ]);
                }
                print_table(
                    &format!("{table_name} — {}, bit set {set_name}", spec.name),
                    &["bits", "SBM", "CDT (gain)"],
                    &rows,
                );
            }
        }
        println!("\npaper reference: {paper_ref}");
        write_csv(
            csv_name,
            &["dataset", "bit_set", "bits", "sbm", "cdt"],
            &csv_rows,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_and_delta_format() {
        assert_eq!(pct(0.7115), "71.2");
        assert_eq!(delta(0.7055, 0.7115), "(-0.60)");
        assert_eq!(delta(0.7523, 0.7498), "(+0.25)");
    }

    #[test]
    fn csv_roundtrip() {
        write_csv("unit-test", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let content = std::fs::read_to_string(out_dir().join("unit-test.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }
}
