//! Workspace integration tests: the whole pipeline, cross-crate.

use instantnet::{baseline_system, Pipeline, PipelineConfig};
use instantnet_data::{Dataset, DatasetSpec};
use instantnet_quant::BitWidthSet;

#[test]
fn pipeline_report_is_ordered_and_consistent() {
    let ds = Dataset::generate(&DatasetSpec::tiny());
    let mut cfg = PipelineConfig::quick();
    cfg.bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
    let report = Pipeline::new(cfg).run(&ds);
    let pts = report.points();
    assert_eq!(pts.len(), 3);
    // Bit-widths ascend; energy ascends with bits (16-bit cap makes the
    // last two equal in hardware cost only if both clamp — 8 < 16 so the
    // first two must strictly ascend).
    assert!(pts[0].bits < pts[1].bits && pts[1].bits < pts[2].bits);
    assert!(pts[0].energy_pj < pts[1].energy_pj);
    for p in pts {
        assert!((p.edp - p.energy_pj * p.latency_s).abs() <= 1e-6 * p.edp.max(1.0));
        assert!((p.fps - 1.0 / p.latency_s).abs() <= 1e-6 * p.fps);
    }
}

#[test]
fn instantnet_beats_baseline_edp_at_lowest_bitwidth() {
    // The Fig. 6 headline claim, at reproduction scale: the searched system
    // dominates the manually designed SP-Net + expert dataflow baseline on
    // EDP at the bottleneck (lowest) bit-width.
    let ds = Dataset::generate(&DatasetSpec::tiny());
    let mut cfg = PipelineConfig::quick();
    cfg.train.epochs = 5;
    let ours = Pipeline::new(cfg.clone()).run(&ds);
    let baseline = baseline_system(&ds, &cfg);
    let our_low = &ours.points()[0];
    let base_low = &baseline.points()[0];
    assert!(
        our_low.edp < base_low.edp,
        "InstantNet EDP {} must beat baseline {}",
        our_low.edp,
        base_low.edp
    );
}

#[test]
fn pipeline_is_deterministic_under_seed() {
    let ds = Dataset::generate(&DatasetSpec::tiny());
    let a = Pipeline::new(PipelineConfig::quick()).run(&ds);
    let b = Pipeline::new(PipelineConfig::quick()).run(&ds);
    assert_eq!(a.arch(), b.arch());
    assert_eq!(a.points().len(), b.points().len());
    for (pa, pb) in a.points().iter().zip(b.points()) {
        assert_eq!(pa.accuracy, pb.accuracy);
        assert_eq!(pa.edp, pb.edp);
    }
}

#[test]
fn generate_and_deploy_stages_compose() {
    let ds = Dataset::generate(&DatasetSpec::tiny());
    let pipeline = Pipeline::new(PipelineConfig::quick());
    let (net, desc) = pipeline.generate_and_train(&ds);
    assert!(net.flops() > 0);
    let report = pipeline.deploy(&ds, &net, &desc);
    assert_eq!(report.arch(), desc);
    assert_eq!(report.flops(), net.flops());
}
