//! Parity and determinism contract of the packed integer inference engine
//! (`instantnet-infer`) against the f32 fake-quant reference path.
//!
//! * **Parity**: for linear and conv layers — and a whole small CNN — the
//!   packed integer forward matches the module's eval-mode fake-quant
//!   forward within one quantization step per element (in practice the
//!   difference is pure f32 association-order rounding, far below a step;
//!   the asserted tolerance is `1e-3 + 1e-3·|ref|`), at every bit-width of
//!   `BitWidthSet::large_range()` and for both SBM and DoReFa.
//! * **Determinism**: packed forwards are bit-identical at 1 thread and at
//!   {2, 3, 7} threads for every bit-width (nibble, i8, i16 and f32
//!   storage tiers all exercised).
//! * **Zero-cost switching**: a bit-width switch performs no per-element
//!   weight work (the pack-pass counter stays frozen after construction).

use instantnet_infer::PackedModel;
use instantnet_nn::layers::{QuantConv2d, QuantLinear};
use instantnet_nn::{models, ForwardCtx, Module};
use instantnet_parallel::with_threads;
use instantnet_quant::{BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [2, 3, 7];

fn assert_close(got: &Tensor, want: &Tensor, ctx: &str) {
    assert_eq!(got.dims(), want.dims(), "{ctx}: dims differ");
    for (i, (&g, &w)) in got.data().iter().zip(want.data()).enumerate() {
        let tol = 1e-3 + 1e-3 * w.abs();
        assert!(
            (g - w).abs() <= tol,
            "{ctx}: element {i}: packed {g} vs reference {w} (tol {tol})"
        );
    }
}

fn reference_eval(
    module: &dyn Module,
    x: &Tensor,
    bits: &BitWidthSet,
    index: usize,
    q: Quantizer,
) -> Tensor {
    let mut ctx = ForwardCtx::eval(bits, index, q);
    module.forward(&Var::constant(x.clone()), &mut ctx).value()
}

#[test]
fn linear_parity_every_bitwidth_both_quantizers() {
    let bits = BitWidthSet::large_range();
    let mut rng = StdRng::seed_from_u64(41);
    let layer = QuantLinear::new(&mut rng, "fc", 24, 10);
    let x = init::uniform(&mut rng, &[5, 24], -0.3, 1.2);
    for q in [Quantizer::Sbm, Quantizer::Dorefa] {
        let packed = PackedModel::prepack(&layer, &bits, q).unwrap();
        for i in 0..bits.len() {
            let want = reference_eval(&layer, &x, &bits, i, q);
            let got = packed.forward_at(i, &x);
            assert_close(&got, &want, &format!("linear {q:?} @ {}", bits.widths()[i]));
        }
    }
}

#[test]
fn conv_parity_every_bitwidth_both_quantizers() {
    let bits = BitWidthSet::large_range();
    let mut rng = StdRng::seed_from_u64(42);
    // Quantized-input conv, a grouped variant (exercises the per-group
    // im2col/GEMM slicing), and a depthwise one (groups == C == K — takes
    // the direct-tap fast path in both engines).
    let convs = [
        QuantConv2d::new(&mut rng, "c1", 6, 8, 3, 1, 1, 1, true),
        QuantConv2d::new(&mut rng, "c2", 6, 8, 3, 2, 1, 2, true),
        QuantConv2d::new(&mut rng, "dw", 6, 6, 3, 1, 1, 6, true),
    ];
    let x = init::uniform(&mut rng, &[2, 6, 10, 10], -0.3, 1.2);
    for conv in &convs {
        for q in [Quantizer::Sbm, Quantizer::Dorefa] {
            let packed = PackedModel::prepack(conv, &bits, q).unwrap();
            for i in 0..bits.len() {
                let want = reference_eval(conv, &x, &bits, i, q);
                let got = packed.forward_at(i, &x);
                assert_close(&got, &want, &format!("conv {q:?} @ {}", bits.widths()[i]));
            }
        }
    }
}

/// Builds a small CNN with per-branch BN statistics populated by train
/// passes (eval mode then reads non-trivial running stats, so the packed
/// engine's BN folding is tested against real values).
fn trained_cnn(bits: &BitWidthSet, q: Quantizer, seed: u64) -> (models::Network, Tensor) {
    let net = models::small_cnn(8, 10, (12, 12), bits.len(), seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let xb = Var::constant(init::uniform(&mut rng, &[4, 3, 12, 12], -1.0, 1.0));
    for i in 0..bits.len() {
        let mut ctx = ForwardCtx::train(bits, i, q);
        net.forward(&xb, &mut ctx);
    }
    let x = init::uniform(&mut rng, &[2, 3, 12, 12], -1.0, 1.0);
    (net, x)
}

#[test]
fn full_network_parity_with_folded_batchnorm() {
    let bits = BitWidthSet::large_range();
    for q in [Quantizer::Sbm, Quantizer::Dorefa] {
        let (net, x) = trained_cnn(&bits, q, 7);
        let packed = PackedModel::prepack(&net, &bits, q).unwrap();
        for i in 0..bits.len() {
            let want = reference_eval(&net, &x, &bits, i, q);
            let got = packed.forward_at(i, &x);
            assert_close(&got, &want, &format!("cnn {q:?} @ {}", bits.widths()[i]));
        }
    }
}

#[test]
fn packed_forward_bit_identical_across_thread_counts() {
    let bits = BitWidthSet::large_range();
    let (net, _) = trained_cnn(&bits, Quantizer::Sbm, 11);
    let packed = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    // Batch and spatial size above the kernels' serial-fallback thresholds
    // so the threaded paths genuinely run.
    let mut rng = StdRng::seed_from_u64(99);
    let x = init::uniform(&mut rng, &[4, 3, 12, 12], -1.0, 1.0);
    for i in 0..bits.len() {
        let serial = with_threads(1, || packed.forward_at(i, &x));
        for t in THREADS {
            let par = with_threads(t, || packed.forward_at(i, &x));
            assert_eq!(
                serial.data(),
                par.data(),
                "bit {} differs at {t} threads",
                bits.widths()[i]
            );
        }
    }
}

#[test]
fn bit_switch_does_no_weight_work() {
    let bits = BitWidthSet::large_range();
    let (net, x) = trained_cnn(&bits, Quantizer::Sbm, 13);
    let mut packed = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let frozen = packed.pack_passes();
    assert!(frozen > 0, "construction performs the packing");
    // Sweep every bit-width twice with forwards in between: the pack-pass
    // counter must not move — switching is a pointer swap.
    for _ in 0..2 {
        for i in 0..bits.len() {
            packed.switch_to(i).unwrap();
            let _ = packed.forward(&x);
        }
    }
    assert_eq!(packed.pack_passes(), frozen, "switching must never repack");
}
