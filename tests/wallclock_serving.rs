//! Wall-clock serving contract.
//!
//! * **The twin guarantee**: a fault-free wall-clock run whose budget
//!   affords one fixed operating point completes the exact same request
//!   set as `simulate_serving_batched` on the frozen trace, with
//!   request-by-request bit-identical outputs — at every
//!   `BitWidthSet::large_range()` bit-width and every worker count
//!   (outputs depend only on input and bits, never on batching, timing,
//!   or placement). Timing assertions are lower-bound only: real threads
//!   on a loaded CI box are noisy, numerics are not.
//! * **Conservation** (proptest): arrivals == completed +
//!   completed_degraded + shed + expired + failed + backlog across
//!   worker counts × deadlines × queue caps × degradation, no matter how
//!   the wall-clock timing falls.
//! * **Degradation**: a burst deep enough to trip the controller serves
//!   degraded batches whose outputs are still bit-identical to a
//!   standalone forward at the downshifted width.
//! * **Errors**: inconsistent knobs are typed `ServingError`s, never
//!   panics or hung threads.
//!
//! The CI matrix re-runs this suite with `INSTANTNET_WALLCLOCK_WORKERS`
//! set to pin the worker count (unset, the tests sweep {1, 2, 4}),
//! `INSTANTNET_WALLCLOCK_QUEUE=shared|sharded` to pin the queue mode
//! (unset, both run), and `INSTANTNET_WALLCLOCK_CONTROLLER=on` to re-run
//! the sweep with the dynamic batch controller enabled.

use instantnet::faults::{FaultKind, FaultPlan};
use instantnet::registry::ModelRegistry;
use instantnet::resilience::{RequestStatus, ServingError};
use instantnet::runtime::{
    simulate_serving_batched, EnergyTrace, Policy, RequestTrace, RuntimeStats, ServingConfig,
    SimulationConfig,
};
use instantnet::wallclock::{
    serve_wallclock, serve_wallclock_registry, serve_wallclock_streaming, stream_channel,
    BatchControl, QueueMode, StreamRequest, WallclockConfig, WallclockDegradation,
    WallclockOutcome,
};
use instantnet::{DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_nn::models;
use instantnet_parallel::with_threads;
use instantnet_quant::{BitWidth, BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Worker counts under test: the CI matrix pins one via
/// `INSTANTNET_WALLCLOCK_WORKERS`; locally the default sweeps three.
fn worker_counts() -> Vec<usize> {
    std::env::var("INSTANTNET_WALLCLOCK_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map_or_else(|| vec![1, 2, 4], |w| vec![w])
}

/// Queue modes under test: the CI matrix pins one via
/// `INSTANTNET_WALLCLOCK_QUEUE=shared|sharded`; unset, both run.
fn queue_modes() -> Vec<QueueMode> {
    match std::env::var("INSTANTNET_WALLCLOCK_QUEUE").ok().as_deref() {
        Some("shared") => vec![QueueMode::Shared],
        Some("sharded") => vec![QueueMode::Sharded { stealing: true }],
        _ => vec![QueueMode::Shared, QueueMode::Sharded { stealing: true }],
    }
}

/// `INSTANTNET_WALLCLOCK_CONTROLLER=on` re-runs the sweep with the
/// dynamic batch controller enabled — the twin guarantee must hold
/// whether or not the cap is being resized mid-run.
fn batch_control_env() -> Option<BatchControl> {
    (std::env::var("INSTANTNET_WALLCLOCK_CONTROLLER")
        .ok()
        .as_deref()
        == Some("on"))
    .then(BatchControl::default)
}

fn point_for(bits: BitWidth, i: usize) -> OperatingPoint {
    let e = 10.0 * (i + 1) as f64;
    let l = 1e-3 * (i + 1) as f64;
    OperatingPoint {
        bits,
        accuracy: 0.5 + 0.05 * i as f32,
        energy_pj: e,
        latency_s: l,
        edp: e * l,
        fps: 1.0 / l,
    }
}

fn report_for(bits: &BitWidthSet) -> DeploymentReport {
    let points = bits
        .widths()
        .iter()
        .enumerate()
        .map(|(i, &b)| point_for(b, i))
        .collect();
    DeploymentReport::new("test", 1, points)
}

fn distinct_inputs(rng: &mut StdRng, count: usize, dims: &[usize]) -> Vec<Tensor> {
    (0..count)
        .map(|_| init::uniform(rng, dims, -1.0, 1.0))
        .collect()
}

/// Every request accounted exactly once, per-worker sums agreeing with
/// the global stats — the invariant that must survive arbitrary timing.
fn assert_wallclock_accounting(stats: &RuntimeStats, outcomes: &[WallclockOutcome], total: usize) {
    let count = |s: RequestStatus| outcomes.iter().filter(|o| o.status == s).count();
    assert_eq!(outcomes.len(), total, "one record per arrival");
    assert_eq!(count(RequestStatus::Completed), stats.completed);
    assert_eq!(
        count(RequestStatus::CompletedDegraded),
        stats.completed_degraded
    );
    assert_eq!(count(RequestStatus::Shed), stats.shed);
    assert_eq!(count(RequestStatus::Expired), stats.expired);
    assert_eq!(count(RequestStatus::Failed), stats.failed);
    assert_eq!(count(RequestStatus::Pending), stats.backlog);
    assert_eq!(
        stats.completed
            + stats.completed_degraded
            + stats.shed
            + stats.expired
            + stats.failed
            + stats.backlog,
        total,
        "conservation: every request accounted exactly once"
    );
    assert_eq!(
        stats.served_requests,
        stats.completed + stats.completed_degraded
    );
    assert_eq!(
        stats.replicas.iter().map(|r| r.served).sum::<usize>(),
        stats.served_requests,
        "per-worker served sums to the global count"
    );
    assert_eq!(
        stats.replicas.iter().map(|r| r.batches).sum::<usize>(),
        stats.batch_histogram.iter().skip(1).sum::<usize>(),
        "per-worker batches sum to the histogram"
    );
    for r in &stats.replicas {
        assert!(
            r.max_queue_depth <= stats.max_queue_depth,
            "a shard's high-water mark cannot exceed the global one"
        );
    }
    for o in outcomes {
        match o.status {
            RequestStatus::Completed | RequestStatus::CompletedDegraded => {
                assert!(o.output.is_some() && o.bits.is_some() && o.served_us.is_some());
                assert!(o.worker.is_some());
                assert!(o.served_us.unwrap() >= o.arrived_us, "time flows forward");
            }
            _ => assert!(o.output.is_none() && o.served_us.is_none()),
        }
    }
}

/// The tentpole contract: at every `large_range()` bit-width and worker
/// count, a fault-free wall-clock run over a frozen trace completes the
/// same request set as the simulated twin with bit-identical outputs.
#[test]
fn wallclock_twin_bit_identical_to_batched_all_bitwidths_and_worker_counts() {
    let bits = BitWidthSet::large_range();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 11);
    let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let steps = 12;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let arrivals: Vec<usize> = (0..steps).map(|t| (t * 3 + 1) % 4).collect();
    let requests = RequestTrace::new(arrivals);
    let total = requests.total();
    let mut rng = StdRng::seed_from_u64(31);
    let inputs = distinct_inputs(&mut rng, 5, &[1, 3, 6, 6]);
    let cfg = SimulationConfig {
        switch_cost_pj: 1.5,
    };
    let step_us = 200u64;

    for (i, &b) in bits.widths().iter().enumerate() {
        // A one-point report freezes the serving bit-width: the twin
        // comparison is then pure numerics, no policy timing involved.
        let report = DeploymentReport::new("twin", 1, vec![point_for(b, i)]);
        let (base_stats, base) = simulate_serving_batched(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &cfg,
            &ServingConfig { max_batch: 4 },
            &mut model,
            &inputs,
        );
        assert_eq!(
            base_stats.served_requests, total,
            "{b}-bit: batched serves all"
        );

        for workers in worker_counts() {
            for queue in queue_modes() {
                let (stats, outcomes) = serve_wallclock(
                    &report,
                    &trace,
                    &requests,
                    Policy::Greedy,
                    &cfg,
                    &WallclockConfig {
                        workers,
                        max_batch: 4,
                        step_time: Duration::from_micros(step_us),
                        queue,
                        batch_control: batch_control_env(),
                        ..WallclockConfig::default()
                    },
                    &model,
                    &inputs,
                )
                .unwrap();
                let ctx = format!("{b}-bit @ {workers} workers, {queue:?}");

                // Identical completion set...
                assert_eq!(stats.completed, total, "{ctx}");
                assert_wallclock_accounting(&stats, &outcomes, total);
                // ...with request-by-request bit-identical outputs.
                for (id, (w, s)) in outcomes.iter().zip(&base).enumerate() {
                    assert_eq!(w.bits, s.bits, "{ctx}: request {id}");
                    assert_eq!(
                        w.output.as_ref().map(Tensor::data),
                        s.output.as_ref().map(Tensor::data),
                        "{ctx}: request {id} output must be bit-identical"
                    );
                }
                // Noise-tolerant timing: the ingress thread must have paced
                // the full schedule in real time (lower bound only — upper
                // bounds flake on loaded machines).
                assert!(
                    stats.elapsed_us >= (steps as u64 - 1) * step_us,
                    "{ctx}: elapsed {}us is shorter than the schedule",
                    stats.elapsed_us
                );
                assert!(stats.requests_per_sec > 0.0, "{ctx}");
                assert_eq!(stats.replicas.len(), workers, "{ctx}");
                assert_eq!(stats.shed + stats.expired + stats.failed, 0, "{ctx}");
                assert!(
                    stats.energy_pj > 0.0 && stats.switch_energy_pj > 0.0,
                    "{ctx}: energy accounting"
                );
            }
        }
    }
}

/// The kernel-thread knob composes: a fleet under `with_threads` splits
/// the allowance across workers and still reproduces the twin bit-for-bit.
#[test]
fn wallclock_splits_kernel_threads_across_workers_without_changing_numerics() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 19);
    let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = DeploymentReport::new("twin", 1, vec![point_for(bits.widths()[1], 0)]);
    let steps = 6;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::uniform(2, steps);
    let mut rng = StdRng::seed_from_u64(47);
    let inputs = distinct_inputs(&mut rng, 4, &[1, 3, 6, 6]);
    let cfg = SimulationConfig::default();
    let (_, base) = simulate_serving_batched(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &cfg,
        &ServingConfig { max_batch: 2 },
        &mut model,
        &inputs,
    );
    let (stats, outcomes) = with_threads(3, || {
        serve_wallclock(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &cfg,
            &WallclockConfig {
                workers: 2,
                max_batch: 2,
                step_time: Duration::from_micros(200),
                ..WallclockConfig::default()
            },
            &model,
            &inputs,
        )
        .unwrap()
    });
    assert_eq!(stats.completed, requests.total());
    for (w, s) in outcomes.iter().zip(&base) {
        assert_eq!(
            w.output.as_ref().map(Tensor::data),
            s.output.as_ref().map(Tensor::data)
        );
    }
}

/// A burst deep enough to trip the hysteresis controller downshifts the
/// fleet; degraded outputs are still bit-identical to a standalone
/// forward at the downshifted width.
#[test]
fn wallclock_degradation_downshifts_under_overload_with_exact_numerics() {
    let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 29);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let steps = 24;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let mut arrivals = vec![0usize; steps];
    arrivals[0] = 32;
    let requests = RequestTrace::new(arrivals);
    let mut rng = StdRng::seed_from_u64(59);
    let inputs = distinct_inputs(&mut rng, 8, &[1, 3, 6, 6]);
    let (stats, outcomes) = serve_wallclock(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &WallclockConfig {
            workers: 1,
            max_batch: 2,
            step_time: Duration::from_micros(500),
            degradation: Some(WallclockDegradation {
                backlog_high: 8,
                backlog_low: 2,
                recovery_window: Duration::from_micros(1),
            }),
            ..WallclockConfig::default()
        },
        &model,
        &inputs,
    )
    .unwrap();

    assert_wallclock_accounting(&stats, &outcomes, 32);
    assert_eq!(stats.served_requests, 32, "permissive run completes all");
    assert!(
        !stats.degradation_events.is_empty(),
        "a 32-deep burst against backlog_high 8 must trip the controller"
    );
    assert!(
        stats.completed_degraded >= 1,
        "at least the first batch serves below the policy's pick"
    );
    // Degradation changes which width serves, never the numerics at the
    // width that did.
    for (i, o) in outcomes.iter().enumerate() {
        let b = o.bits.unwrap();
        let idx = model.bit_widths().index_of(b.into()).unwrap();
        let reference = model.forward_at(idx, &inputs[i % inputs.len()]);
        assert_eq!(
            o.output.as_ref().unwrap().data(),
            reference.data(),
            "request {i} at {b} bits must be bit-identical"
        );
        if o.status == RequestStatus::CompletedDegraded {
            assert!(b < 32, "degraded requests serve below the top point");
        }
    }
}

/// Inconsistent knobs are typed errors — no panics, no spawned threads
/// left behind.
#[test]
fn invalid_wallclock_configs_are_typed_errors_not_panics() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 2, (6, 6), bits.len(), 7);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let mut rng = StdRng::seed_from_u64(3);
    let inputs = distinct_inputs(&mut rng, 1, &[1, 3, 6, 6]);
    let run = |wall: WallclockConfig| {
        serve_wallclock(
            &report,
            &EnergyTrace::new(vec![100.0; 2]),
            &RequestTrace::uniform(1, 2),
            Policy::Greedy,
            &SimulationConfig::default(),
            &wall,
            &model,
            &inputs,
        )
    };
    let config_cases = [
        WallclockConfig {
            workers: 0,
            ..WallclockConfig::default()
        },
        WallclockConfig {
            max_batch: 0,
            ..WallclockConfig::default()
        },
        WallclockConfig {
            step_time: Duration::ZERO,
            ..WallclockConfig::default()
        },
        WallclockConfig {
            queue_capacity: Some(0),
            ..WallclockConfig::default()
        },
        WallclockConfig {
            degradation: Some(WallclockDegradation {
                backlog_high: 2,
                backlog_low: 2,
                recovery_window: Duration::from_millis(1),
            }),
            ..WallclockConfig::default()
        },
        WallclockConfig {
            degradation: Some(WallclockDegradation {
                backlog_high: 8,
                backlog_low: 2,
                recovery_window: Duration::ZERO,
            }),
            ..WallclockConfig::default()
        },
    ];
    for wall in config_cases {
        assert!(
            matches!(run(wall.clone()), Err(ServingError::Config(_))),
            "{wall:?} must be a config error"
        );
    }

    // Mismatched trace lengths.
    assert!(matches!(
        serve_wallclock(
            &report,
            &EnergyTrace::new(vec![100.0; 3]),
            &RequestTrace::uniform(1, 2),
            Policy::Greedy,
            &SimulationConfig::default(),
            &WallclockConfig::default(),
            &model,
            &inputs,
        ),
        Err(ServingError::Config(_))
    ));
    // Empty input pool.
    assert!(matches!(
        serve_wallclock(
            &report,
            &EnergyTrace::new(vec![100.0; 2]),
            &RequestTrace::uniform(1, 2),
            Policy::Greedy,
            &SimulationConfig::default(),
            &WallclockConfig::default(),
            &model,
            &[],
        ),
        Err(ServingError::Config(_))
    ));
    // A report point the packed set can't serve fails up front.
    let wide = BitWidthSet::new(vec![4, 8, 16]).unwrap();
    assert!(matches!(
        serve_wallclock(
            &report_for(&wide),
            &EnergyTrace::new(vec![100.0; 2]),
            &RequestTrace::uniform(1, 2),
            Policy::Greedy,
            &SimulationConfig::default(),
            &WallclockConfig::default(),
            &model,
            &inputs,
        ),
        Err(ServingError::Infer(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No matter how the wall-clock timing falls — worker count, queue
    /// topology, stealing, dynamic batching, queue cap, deadlines,
    /// degradation — every arrival is accounted exactly once and the
    /// per-worker sums agree with the global stats.
    #[test]
    fn conservation_holds_across_worker_counts_and_knobs(
        workers in 1usize..5,
        steps in 6usize..13,
        max_batch in 1usize..4,
        deadline_steps in prop::sample::select(vec![-1i64, 1, 2, 4]),
        cap in prop::sample::select(vec![-1isize, 1, 3, 6]),
        degrade_flag in 0usize..2,
        queue_flag in 0usize..3,
        dyn_batch in 0usize..2,
        seed in 0u64..1_000,
    ) {
        use rand::Rng;
        let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
        let net = models::small_cnn(2, 4, (6, 6), bits.len(), 13);
        let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        let report = report_for(&bits);
        let mut rng = StdRng::seed_from_u64(seed);
        let arrivals: Vec<usize> = (0..steps).map(|_| rng.gen_range(0..4usize)).collect();
        let trace = EnergyTrace::new(vec![100.0; steps]);
        let requests = RequestTrace::new(arrivals);
        let total = requests.total();
        let deadline_steps = u64::try_from(deadline_steps).ok();
        let cap = usize::try_from(cap).ok();
        let degrade = degrade_flag == 1;
        let inputs = distinct_inputs(&mut rng, 3, &[1, 3, 6, 6]);
        let step_us = 300u64;
        let (stats, outcomes) = serve_wallclock(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &WallclockConfig {
                workers,
                max_batch,
                step_time: Duration::from_micros(step_us),
                queue_capacity: cap,
                deadline: deadline_steps.map(|d| Duration::from_micros(d * step_us)),
                degradation: degrade.then(|| WallclockDegradation {
                    backlog_high: 4,
                    backlog_low: 1,
                    recovery_window: Duration::from_micros(step_us),
                }),
                queue: match queue_flag {
                    0 => QueueMode::Shared,
                    1 => QueueMode::Sharded { stealing: false },
                    _ => QueueMode::Sharded { stealing: true },
                },
                batch_control: (dyn_batch == 1).then(|| BatchControl {
                    target: Duration::from_micros(500),
                    headroom_pct: 50,
                    window: 2,
                    initial: 1,
                }),
                ..WallclockConfig::default()
            },
            &model,
            &inputs,
        ).unwrap();

        prop_assert_eq!(outcomes.len(), total);
        assert_wallclock_accounting(&stats, &outcomes, total);
        // Whatever completed is numerically exact, regardless of when,
        // where, and at which downshift level it was served.
        for (i, o) in outcomes.iter().enumerate() {
            if let (Some(b), Some(out)) = (o.bits, o.output.as_ref()) {
                let idx = model.bit_widths().index_of(b.into()).unwrap();
                let reference = model.forward_at(idx, &inputs[i % inputs.len()]);
                prop_assert_eq!(out.data(), reference.data(), "request {}", i);
            }
        }
    }
}

/// Shared fixture for the fault-injection tests: a one-point 8-bit
/// report, uniform arrivals, and a fault-free baseline to compare
/// outputs against.
fn fault_fixture() -> (
    DeploymentReport,
    EnergyTrace,
    RequestTrace,
    PackedModel,
    Vec<Tensor>,
) {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 83);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = DeploymentReport::new("faults", 1, vec![point_for(bits.widths()[1], 0)]);
    let steps = 10;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::uniform(2, steps);
    let mut rng = StdRng::seed_from_u64(89);
    let inputs = distinct_inputs(&mut rng, 5, &[1, 3, 6, 6]);
    (report, trace, requests, model, inputs)
}

#[allow(clippy::too_many_arguments)]
fn run_with_faults(
    report: &DeploymentReport,
    trace: &EnergyTrace,
    requests: &RequestTrace,
    model: &PackedModel,
    inputs: &[Tensor],
    workers: usize,
    max_retries: usize,
    faults: &FaultPlan,
) -> (RuntimeStats, Vec<WallclockOutcome>) {
    let registry = ModelRegistry::new(model.clone(), "v1");
    serve_wallclock_registry(
        report,
        trace,
        requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &WallclockConfig {
            workers,
            max_batch: 2,
            step_time: Duration::from_micros(500),
            max_retries,
            ..WallclockConfig::default()
        },
        &registry,
        faults,
        inputs,
    )
    .unwrap()
}

/// Injected transient errors and panics fail only the batch they hit:
/// with retries in budget every request still completes, the faulted
/// batches and retries are counted, and outputs are bit-identical to a
/// fault-free run — a retried forward is the same forward.
#[test]
fn wallclock_injected_faults_retry_and_stay_bit_identical() {
    let (report, trace, requests, model, inputs) = fault_fixture();
    let total = requests.total();
    let plan = FaultPlan::from_schedule([
        (0, FaultKind::TransientError),
        (1, FaultKind::ForwardPanic),
        (2, FaultKind::TransientError),
        (3, FaultKind::ForwardPanic),
    ]);
    for workers in worker_counts() {
        let (base_stats, base) = run_with_faults(
            &report,
            &trace,
            &requests,
            &model,
            &inputs,
            workers,
            5,
            &FaultPlan::none(),
        );
        assert_eq!(base_stats.faults_injected, 0);
        let (stats, outcomes) = run_with_faults(
            &report, &trace, &requests, &model, &inputs, workers, 5, &plan,
        );
        let ctx = format!("{workers} workers");
        assert_eq!(stats.completed, total, "{ctx}: retries absorb every fault");
        assert_wallclock_accounting(&stats, &outcomes, total);
        assert!(
            stats.faults_injected >= 1,
            "{ctx}: traffic flowed through the faulted steps"
        );
        assert!(stats.faults_injected <= plan.len(), "{ctx}: one per step");
        let faulted: usize = stats.replicas.iter().map(|r| r.faulted_batches).sum();
        assert_eq!(
            faulted, stats.faults_injected,
            "{ctx}: every injected error/panic faulted exactly one batch"
        );
        assert!(
            stats.retried >= faulted,
            "{ctx}: each faulted batch retried at least one request"
        );
        for (id, (w, b)) in outcomes.iter().zip(&base).enumerate() {
            assert_eq!(
                w.output.as_ref().map(Tensor::data),
                b.output.as_ref().map(Tensor::data),
                "{ctx}: request {id} bit-identical after retry"
            );
        }
    }
}

/// An injected stall consumes no requests: the batch is handed back,
/// the step is waited out, and everything completes — the stall is
/// visible only in `stalled_steps`.
#[test]
fn wallclock_injected_stall_delays_but_loses_nothing() {
    let (report, trace, requests, model, inputs) = fault_fixture();
    let total = requests.total();
    let plan = FaultPlan::from_schedule((0..4).map(|t| (t, FaultKind::Stall)));
    for workers in worker_counts() {
        let (stats, outcomes) = run_with_faults(
            &report, &trace, &requests, &model, &inputs, workers, 0, &plan,
        );
        let ctx = format!("{workers} workers");
        assert_eq!(stats.completed, total, "{ctx}: stalls only delay");
        assert_wallclock_accounting(&stats, &outcomes, total);
        assert!(stats.stalled_steps >= 1, "{ctx}: a stall fired");
        assert!(stats.stalled_steps <= plan.len(), "{ctx}: one per step");
        assert_eq!(
            stats.stalled_steps, stats.faults_injected,
            "{ctx}: stalls were the only faults"
        );
        let faulted: usize = stats.replicas.iter().map(|r| r.faulted_batches).sum();
        assert_eq!(faulted, 0, "{ctx}: no forward ever failed");
    }
}

/// With no retry budget, a fault-hit batch's requests fail terminally —
/// and the fault plan covers every step, so the first served batch is
/// guaranteed to hit one. Conservation still holds, and no worker dies:
/// panics are isolated per batch by `catch_unwind`.
#[test]
fn wallclock_exhausted_retries_fail_requests_without_killing_workers() {
    let (report, trace, requests, model, inputs) = fault_fixture();
    let total = requests.total();
    let plan = FaultPlan::from_schedule((0..trace.len()).map(|t| {
        if t % 2 == 0 {
            (t, FaultKind::ForwardPanic)
        } else {
            (t, FaultKind::TransientError)
        }
    }));
    for workers in worker_counts() {
        let (stats, outcomes) = run_with_faults(
            &report, &trace, &requests, &model, &inputs, workers, 0, &plan,
        );
        let ctx = format!("{workers} workers");
        assert_wallclock_accounting(&stats, &outcomes, total);
        assert!(
            stats.failed >= 1,
            "{ctx}: the first served batch consumed a fault and failed"
        );
        assert_eq!(stats.completed + stats.failed, total, "{ctx}");
        assert_eq!(stats.retried, 0, "{ctx}: no retry budget");
        assert_eq!(
            stats.replicas.len(),
            workers,
            "{ctx}: every worker survived its panics"
        );
        for o in outcomes
            .iter()
            .filter(|o| o.status == RequestStatus::Failed)
        {
            assert_eq!(o.attempts, 1, "failed on the first and only attempt");
        }
    }
}

/// Queue topology is invisible in the numerics: `Sharded` with stealing
/// off completes the identical request set with request-by-request
/// bit-identical outputs to `Shared`, and records zero steals.
#[test]
fn wallclock_sharded_without_stealing_bit_identical_to_shared() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 101);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = DeploymentReport::new("twin", 1, vec![point_for(bits.widths()[1], 0)]);
    let steps = 8;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::uniform(3, steps);
    let total = requests.total();
    let mut rng = StdRng::seed_from_u64(103);
    let inputs = distinct_inputs(&mut rng, 6, &[1, 3, 6, 6]);
    let run = |queue: QueueMode| {
        serve_wallclock(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &WallclockConfig {
                workers: 3,
                max_batch: 4,
                step_time: Duration::from_micros(200),
                queue,
                ..WallclockConfig::default()
            },
            &model,
            &inputs,
        )
        .unwrap()
    };
    let (shared_stats, shared) = run(QueueMode::Shared);
    assert_eq!(shared_stats.steals, 0, "shared mode never steals");
    for queue in [
        QueueMode::Sharded { stealing: false },
        QueueMode::Sharded { stealing: true },
    ] {
        let (stats, outcomes) = run(queue);
        assert_eq!(stats.completed, total, "{queue:?}");
        assert_wallclock_accounting(&stats, &outcomes, total);
        if queue == (QueueMode::Sharded { stealing: false }) {
            assert_eq!(stats.steals, 0, "stealing off records zero steals");
        }
        for (id, (a, b)) in outcomes.iter().zip(&shared).enumerate() {
            assert_eq!(a.bits, b.bits, "{queue:?}: request {id}");
            assert_eq!(
                a.output.as_ref().map(Tensor::data),
                b.output.as_ref().map(Tensor::data),
                "{queue:?}: request {id} must be bit-identical across queue modes"
            );
        }
    }
}

/// A heavy single-step burst over sharded queues: every request is
/// conserved and numerically exact whether stealing is on or off, the
/// per-shard high-water marks are recorded, and any steals that occurred
/// land in the counter. (The deterministic "stealing halves the deepest
/// backlog and drains in fewer rounds" claim is pinned at the queue unit
/// level, where timing is controlled.)
#[test]
fn wallclock_sharded_skewed_burst_conserves_and_records_shard_depths() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 107);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = DeploymentReport::new("burst", 1, vec![point_for(bits.widths()[1], 0)]);
    let steps = 16;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let mut arrivals = vec![0usize; steps];
    arrivals[0] = 48;
    let requests = RequestTrace::new(arrivals);
    let mut rng = StdRng::seed_from_u64(109);
    let inputs = distinct_inputs(&mut rng, 8, &[1, 3, 6, 6]);
    for stealing in [false, true] {
        let (stats, outcomes) = serve_wallclock(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &WallclockConfig {
                workers: 4,
                max_batch: 2,
                step_time: Duration::from_micros(300),
                queue: QueueMode::Sharded { stealing },
                ..WallclockConfig::default()
            },
            &model,
            &inputs,
        )
        .unwrap();
        let ctx = format!("stealing={stealing}");
        assert_eq!(stats.completed, 48, "{ctx}: the whole burst completes");
        assert_wallclock_accounting(&stats, &outcomes, 48);
        if !stealing {
            assert_eq!(stats.steals, 0, "{ctx}");
        }
        // Least-loaded dispatch spread a 48-deep burst over 4 shards:
        // some shard must have seen a non-trivial high-water mark, and
        // the recorded marks must be consistent with the global one.
        assert!(
            stats.replicas.iter().any(|r| r.max_queue_depth >= 1),
            "{ctx}: per-shard high-water marks are recorded"
        );
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.input, i % inputs.len(), "{ctx}: trace input convention");
            let idx = model.bit_widths().index_of(o.bits.unwrap().into()).unwrap();
            let reference = model.forward_at(idx, &inputs[o.input]);
            assert_eq!(
                o.output.as_ref().unwrap().data(),
                reference.data(),
                "{ctx}: request {i} numerically exact"
            );
        }
    }
}

/// An unreachable latency target shrinks the cap step by step to 1 and
/// the decisions land in `batch_limit_events`; outputs stay exact.
#[test]
fn wallclock_batch_controller_shrinks_to_floor_under_breach() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 113);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = DeploymentReport::new("ctl", 1, vec![point_for(bits.widths()[1], 0)]);
    let steps = 16;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let mut arrivals = vec![0usize; steps];
    arrivals[0] = 32;
    let requests = RequestTrace::new(arrivals);
    let mut rng = StdRng::seed_from_u64(127);
    let inputs = distinct_inputs(&mut rng, 4, &[1, 3, 6, 6]);
    let (stats, outcomes) = serve_wallclock(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &WallclockConfig {
            workers: 1,
            max_batch: 4,
            step_time: Duration::from_micros(400),
            queue: QueueMode::Sharded { stealing: true },
            batch_control: Some(BatchControl {
                // 1µs is below any conv forward: every window breaches.
                target: Duration::from_micros(1),
                headroom_pct: 50,
                window: 1,
                initial: 4,
            }),
            ..WallclockConfig::default()
        },
        &model,
        &inputs,
    )
    .unwrap();
    assert_eq!(stats.completed, 32);
    assert_wallclock_accounting(&stats, &outcomes, 32);
    let caps: Vec<usize> = stats.batch_limit_events.iter().map(|&(_, c)| c).collect();
    assert_eq!(
        caps,
        vec![2, 1],
        "always-breaching target halves 4 → 2 → 1 and then holds the floor"
    );
}

/// An unreachably generous target grows the cap to `max_batch` and
/// holds it there — the ceiling produces no further events.
#[test]
fn wallclock_batch_controller_grows_to_max_under_slack() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 131);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = DeploymentReport::new("ctl", 1, vec![point_for(bits.widths()[1], 0)]);
    let steps = 16;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let mut arrivals = vec![0usize; steps];
    arrivals[0] = 48;
    let requests = RequestTrace::new(arrivals);
    let mut rng = StdRng::seed_from_u64(137);
    let inputs = distinct_inputs(&mut rng, 4, &[1, 3, 6, 6]);
    let (stats, outcomes) = serve_wallclock(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &WallclockConfig {
            workers: 1,
            max_batch: 8,
            step_time: Duration::from_micros(400),
            batch_control: Some(BatchControl {
                // 10s of slack: every window measures well under the
                // 50% headroom line and doubles the cap.
                target: Duration::from_secs(10),
                headroom_pct: 50,
                window: 1,
                initial: 1,
            }),
            ..WallclockConfig::default()
        },
        &model,
        &inputs,
    )
    .unwrap();
    assert_eq!(stats.completed, 48);
    assert_wallclock_accounting(&stats, &outcomes, 48);
    let caps: Vec<usize> = stats.batch_limit_events.iter().map(|&(_, c)| c).collect();
    assert_eq!(
        caps,
        vec![2, 4, 8],
        "slack doubles 1 → 2 → 4 → 8, then holds"
    );
}

/// Batch-before-bits: with both controllers on and latency pressure from
/// the first batch, the batch cap shrinks to its floor *before* the
/// precision controller is allowed its first downshift.
#[test]
fn wallclock_batch_cap_shrinks_before_precision_drops() {
    let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 139);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let steps = 24;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let mut arrivals = vec![0usize; steps];
    arrivals[0] = 32;
    let requests = RequestTrace::new(arrivals);
    let mut rng = StdRng::seed_from_u64(149);
    let inputs = distinct_inputs(&mut rng, 8, &[1, 3, 6, 6]);
    let (stats, outcomes) = serve_wallclock(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &WallclockConfig {
            workers: 1,
            max_batch: 4,
            step_time: Duration::from_micros(500),
            degradation: Some(WallclockDegradation {
                backlog_high: 4,
                backlog_low: 1,
                recovery_window: Duration::from_micros(1),
            }),
            batch_control: Some(BatchControl {
                target: Duration::from_micros(1),
                headroom_pct: 50,
                window: 1,
                initial: 4,
            }),
            ..WallclockConfig::default()
        },
        &model,
        &inputs,
    )
    .unwrap();
    assert_wallclock_accounting(&stats, &outcomes, 32);
    assert_eq!(stats.served_requests, 32);
    let floor_step = stats
        .batch_limit_events
        .iter()
        .find(|&&(_, cap)| cap == 1)
        .map(|&(step, _)| step)
        .expect("an always-breaching target must floor the cap");
    assert!(
        !stats.degradation_events.is_empty(),
        "a 32-deep burst against backlog_high 4 still trips the controller"
    );
    let first_downshift = stats.degradation_events[0].0;
    assert!(
        first_downshift >= floor_step,
        "precision must not drop (step {first_downshift}) before the batch \
         cap floors (step {floor_step})"
    );
}

/// Live ingress: requests pushed from another thread through a
/// [`stream_channel`] are served with the same numerics as a direct
/// forward, outcomes indexed by the ids `submit` handed back.
#[test]
fn wallclock_streaming_channel_serves_live_pushes_bit_identically() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 151);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = DeploymentReport::new("stream", 1, vec![point_for(bits.widths()[1], 0)]);
    let trace = EnergyTrace::new(vec![100.0; 4]);
    let mut rng = StdRng::seed_from_u64(157);
    let inputs = distinct_inputs(&mut rng, 6, &[1, 3, 6, 6]);
    let registry = ModelRegistry::new(model.clone(), "v1");
    let (sender, ingress) = stream_channel();
    let pusher = std::thread::spawn(move || {
        for i in 0..10usize {
            // Explicit input selection — reversed so the test can tell
            // "the request's chosen input" from "the id convention".
            assert!(sender.push(StreamRequest {
                input: Some(9 - i),
                deadline: None,
            }));
        }
        // Dropping the last sender ends the stream.
    });
    let (stats, outcomes) = serve_wallclock_streaming(
        &report,
        &trace,
        Policy::Greedy,
        &SimulationConfig::default(),
        &WallclockConfig {
            workers: 2,
            max_batch: 3,
            step_time: Duration::from_micros(300),
            queue: QueueMode::Sharded { stealing: true },
            ..WallclockConfig::default()
        },
        &registry,
        &FaultPlan::none(),
        vec![Box::new(ingress)],
        &inputs,
    )
    .unwrap();
    pusher.join().unwrap();
    assert_eq!(outcomes.len(), 10, "one outcome per push");
    assert_eq!(stats.completed, 10);
    assert_wallclock_accounting(&stats, &outcomes, 10);
    for (i, o) in outcomes.iter().enumerate() {
        assert_eq!(
            o.input,
            (9 - i) % inputs.len(),
            "request {i} kept its input"
        );
        let idx = model.bit_widths().index_of(o.bits.unwrap().into()).unwrap();
        let reference = model.forward_at(idx, &inputs[o.input]);
        assert_eq!(
            o.output.as_ref().unwrap().data(),
            reference.data(),
            "request {i} bit-identical to a direct forward of its input"
        );
    }
}

/// Two producers — a frozen trace replay and a live channel — drain
/// exactly once through one run: the arrival count is the sum of both,
/// conservation holds, and every outcome is numerically exact against
/// the input recorded for it.
#[test]
fn wallclock_streaming_dual_sources_drain_exactly_once() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 163);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = DeploymentReport::new("dual", 1, vec![point_for(bits.widths()[1], 0)]);
    let steps = 4;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::uniform(1, steps);
    let mut rng = StdRng::seed_from_u64(167);
    let inputs = distinct_inputs(&mut rng, 5, &[1, 3, 6, 6]);
    let registry = ModelRegistry::new(model.clone(), "v1");
    let wall = WallclockConfig {
        workers: 2,
        max_batch: 2,
        step_time: Duration::from_micros(300),
        queue: QueueMode::Sharded { stealing: true },
        ..WallclockConfig::default()
    };
    let (sender, ingress) = stream_channel();
    let pusher = std::thread::spawn(move || {
        for i in 0..6usize {
            assert!(sender.push(StreamRequest {
                input: Some(i),
                deadline: None,
            }));
        }
    });
    let (stats, outcomes) = serve_wallclock_streaming(
        &report,
        &trace,
        Policy::Greedy,
        &SimulationConfig::default(),
        &wall,
        &registry,
        &FaultPlan::none(),
        vec![
            Box::new(instantnet::wallclock::TraceIngress::new(
                &requests,
                wall.step_time,
            )),
            Box::new(ingress),
        ],
        &inputs,
    )
    .unwrap();
    pusher.join().unwrap();
    let total = requests.total() + 6;
    assert_eq!(outcomes.len(), total, "both producers drained exactly once");
    assert_eq!(stats.completed, total);
    assert_wallclock_accounting(&stats, &outcomes, total);
    for (i, o) in outcomes.iter().enumerate() {
        let idx = model.bit_widths().index_of(o.bits.unwrap().into()).unwrap();
        let reference = model.forward_at(idx, &inputs[o.input]);
        assert_eq!(
            o.output.as_ref().unwrap().data(),
            reference.data(),
            "request {i} exact for its recorded input"
        );
    }
}
