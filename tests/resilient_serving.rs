//! Resilient serving contract.
//!
//! * **Strictly additive**: with every [`ResilienceConfig`] knob at its
//!   default and an empty [`FaultPlan`], `simulate_serving_resilient`
//!   reproduces `simulate_serving_batched` bit-for-bit — outputs,
//!   schedule, switches, energy, and queueing stats — across
//!   `BitWidthSet::large_range()`, both policies, and 1 vs N threads.
//! * **Acceptance scenario**: under a seeded fault plan plus bursty
//!   overload, the degradation controller downshifts precision, ≥90% of
//!   requests complete within deadline, the rest are shed/expired/failed
//!   with exact accounting, and no injected panic escapes the simulator.
//! * **Queue invariants** (proptest): conservation, deadline compliance,
//!   bounded controller oscillation, retry budgets, and energy
//!   reconciliation under random traffic × faults × knobs.

use instantnet::faults::{FaultKind, FaultPlan, FaultRates};
use instantnet::resilience::{
    simulate_serving_resilient, DegradationConfig, RequestStatus, ResilienceConfig, ServingError,
};
use instantnet::runtime::{
    simulate_serving_batched, EnergyTrace, Policy, RequestTrace, RuntimeStats, ServingConfig,
    SimulationConfig,
};
use instantnet::{DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_nn::models;
use instantnet_parallel::with_threads;
use instantnet_quant::{BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [2, 3, 7];

/// One operating point per bit-width: energy 10·(i+1) (budgets select any
/// point deterministically) and latency 1ms·(i+1), so fewer bits genuinely
/// run faster — the lever the degradation controller pulls.
fn report_for(bits: &BitWidthSet) -> DeploymentReport {
    let points = bits
        .widths()
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            let e = 10.0 * (i + 1) as f64;
            let l = 1e-3 * (i + 1) as f64;
            OperatingPoint {
                bits: b,
                accuracy: 0.5 + 0.05 * i as f32,
                energy_pj: e,
                latency_s: l,
                edp: e * l,
                fps: 1.0 / l,
            }
        })
        .collect();
    DeploymentReport::new("test", 1, points)
}

/// A budget trace that sweeps every operating point and includes one
/// unaffordable (dropped) step.
fn sweeping_trace(n_points: usize, steps: usize) -> EnergyTrace {
    EnergyTrace::new(
        (0..steps)
            .map(|t| {
                if t == 1 {
                    5.0
                } else {
                    10.0 * ((t % n_points) + 1) as f64 + 1.0
                }
            })
            .collect(),
    )
}

fn distinct_inputs(rng: &mut StdRng, count: usize, dims: &[usize]) -> Vec<Tensor> {
    (0..count)
        .map(|_| init::uniform(rng, dims, -1.0, 1.0))
        .collect()
}

/// Counts outcome statuses and checks they agree with the stats fields.
fn assert_accounting(
    stats: &RuntimeStats,
    outcomes: &[instantnet::resilience::ResilientOutcome],
    total: usize,
) {
    let count = |s: RequestStatus| outcomes.iter().filter(|o| o.status == s).count();
    assert_eq!(outcomes.len(), total, "one record per arrival");
    assert_eq!(count(RequestStatus::Completed), stats.completed);
    assert_eq!(
        count(RequestStatus::CompletedDegraded),
        stats.completed_degraded
    );
    assert_eq!(count(RequestStatus::Shed), stats.shed);
    assert_eq!(count(RequestStatus::Expired), stats.expired);
    assert_eq!(count(RequestStatus::Failed), stats.failed);
    assert_eq!(count(RequestStatus::Pending), stats.backlog);
    assert_eq!(
        stats.completed
            + stats.completed_degraded
            + stats.shed
            + stats.expired
            + stats.failed
            + stats.backlog,
        total,
        "conservation: every request accounted exactly once"
    );
    assert_eq!(
        stats.served_requests,
        stats.completed + stats.completed_degraded
    );
}

#[test]
fn fault_free_defaults_bit_identical_to_batched_all_bitwidths_policies_threads() {
    let bits = BitWidthSet::large_range();
    let report = report_for(&bits);
    let steps = 2 * bits.len() + 2;
    let trace = sweeping_trace(bits.len(), steps);
    let arrivals: Vec<usize> = (0..steps).map(|t| (t * 7 + 3) % 5).collect();
    let requests = RequestTrace::new(arrivals);
    let mut rng = StdRng::seed_from_u64(23);
    let inputs = distinct_inputs(&mut rng, 3, &[1, 3, 8, 8]);
    let serving = ServingConfig { max_batch: 3 };
    let cfg = SimulationConfig {
        switch_cost_pj: 2.5,
    };

    for policy in [Policy::Greedy, Policy::Hysteresis { margin: 0.08 }] {
        for threads in std::iter::once(1).chain(THREADS) {
            let net = models::small_cnn(4, 6, (8, 8), bits.len(), 17);
            let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
            let ((base_stats, base_outcomes), (res_stats, res_outcomes)) =
                with_threads(threads, || {
                    let base = simulate_serving_batched(
                        &report, &trace, &requests, policy, &cfg, &serving, &mut model, &inputs,
                    );
                    let res = simulate_serving_resilient(
                        &report,
                        &trace,
                        &requests,
                        policy,
                        &cfg,
                        &serving,
                        &ResilienceConfig::default(),
                        &FaultPlan::none(),
                        &mut model,
                        &inputs,
                    )
                    .unwrap();
                    (base, res)
                });
            let ctx = format!("{policy:?} @ {threads} threads");
            assert_eq!(res_stats.schedule, base_stats.schedule, "{ctx}");
            assert_eq!(res_stats.switches, base_stats.switches, "{ctx}");
            assert_eq!(res_stats.dropped, base_stats.dropped, "{ctx}");
            assert_eq!(res_stats.mean_accuracy, base_stats.mean_accuracy, "{ctx}");
            assert_eq!(res_stats.energy_pj, base_stats.energy_pj, "{ctx}");
            assert_eq!(
                res_stats.switch_energy_pj, base_stats.switch_energy_pj,
                "{ctx}"
            );
            assert_eq!(
                res_stats.served_requests, base_stats.served_requests,
                "{ctx}"
            );
            assert_eq!(res_stats.backlog, base_stats.backlog, "{ctx}");
            assert_eq!(
                res_stats.max_queue_depth, base_stats.max_queue_depth,
                "{ctx}"
            );
            assert_eq!(
                res_stats.batch_histogram, base_stats.batch_histogram,
                "{ctx}"
            );
            assert_eq!(res_stats.wait_steps, base_stats.wait_steps, "{ctx}");
            assert_eq!(
                res_stats.mean_wait_steps, base_stats.mean_wait_steps,
                "{ctx}"
            );
            assert_eq!(res_stats.p99_wait_steps, base_stats.p99_wait_steps, "{ctx}");
            // Nothing resilience-specific fires on the clean path.
            assert_eq!(res_stats.completed, res_stats.served_requests, "{ctx}");
            assert_eq!(res_stats.completed_degraded, 0, "{ctx}");
            assert_eq!(
                res_stats.shed + res_stats.expired + res_stats.failed + res_stats.retried,
                0,
                "{ctx}"
            );
            assert!(res_stats.degradation_events.is_empty(), "{ctx}");
            // Outputs are bitwise equal, request by request.
            assert_eq!(res_outcomes.len(), base_outcomes.len(), "{ctx}");
            for (r, (a, b)) in res_outcomes.iter().zip(&base_outcomes).enumerate() {
                assert_eq!(a.served_at, b.served_at, "{ctx}: request {r}");
                assert_eq!(a.bits, b.bits, "{ctx}: request {r}");
                assert_eq!(
                    a.output.as_ref().map(Tensor::data),
                    b.output.as_ref().map(Tensor::data),
                    "{ctx}: request {r} output differs"
                );
            }
        }
    }
}

#[test]
fn overload_with_faults_meets_deadlines_by_downshifting() {
    let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
    let net = models::small_cnn(2, 2, (6, 6), bits.len(), 7);
    let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits); // latencies 1/2/3 ms, lowest bits first
    let steps = 60;
    // Budget always affords full precision, so greedy pins 32-bit — whose
    // 3 ms latency fits only 2 inferences into a 7 ms step. Bursty traffic
    // averaging ~4/step overloads it; the 4-bit point fits 7.
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let arrivals: Vec<usize> = (0..steps).map(|t| if t % 5 == 0 { 8 } else { 3 }).collect();
    let requests = RequestTrace::new(arrivals);
    let total = requests.total();
    let mut rng = StdRng::seed_from_u64(41);
    let inputs = distinct_inputs(&mut rng, 4, &[1, 3, 6, 6]);
    let faults = FaultPlan::seeded(
        2024,
        steps,
        FaultRates {
            stall: 0.05,
            transient: 0.05,
            panic: 0.03,
        },
    );
    assert!(!faults.is_empty(), "the seeded plan must actually inject");
    assert!(
        faults.iter().any(|(_, k)| k == FaultKind::ForwardPanic),
        "scenario must exercise panic isolation"
    );
    let resilience = ResilienceConfig {
        deadline_steps: Some(6),
        max_queue_depth: Some(40),
        max_retries: 2,
        retry_backoff_steps: 0,
        step_time_s: Some(7e-3),
        degradation: Some(DegradationConfig {
            backlog_high: 8,
            backlog_low: 2,
            recovery_window: 3,
        }),
    };
    let (stats, outcomes) = simulate_serving_resilient(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &ServingConfig { max_batch: 8 },
        &resilience,
        &faults,
        &mut model,
        &inputs,
    )
    .expect("scenario config is valid");

    assert_accounting(&stats, &outcomes, total);
    assert_eq!(stats.faults_injected, faults.count_before(steps));
    assert!(stats.stalled_steps > 0, "stalls must have landed");
    assert!(stats.retried > 0, "faulted batches must have retried");

    // The controller engaged and the engine spent real time downshifted.
    assert!(
        !stats.degradation_events.is_empty(),
        "overload must trigger degradation"
    );
    assert!(
        stats.completed_degraded > 0,
        "degraded completions expected"
    );
    let low_bit_steps: usize = stats
        .time_in_bits
        .iter()
        .filter(|&&(b, _)| b < 32)
        .map(|&(_, n)| n)
        .sum();
    assert!(low_bit_steps > 0, "time_in_bits must show the downshift");

    // ≥90% of all arrivals complete within their deadline.
    let within = outcomes
        .iter()
        .filter(|o| {
            matches!(
                o.status,
                RequestStatus::Completed | RequestStatus::CompletedDegraded
            ) && o.served_at.unwrap() <= o.deadline.unwrap()
        })
        .count();
    assert!(
        within as f64 >= 0.9 * total as f64,
        "only {within}/{total} completed within deadline; stats: completed {} degraded {} \
         shed {} expired {} failed {} backlog {}",
        stats.completed,
        stats.completed_degraded,
        stats.shed,
        stats.expired,
        stats.failed,
        stats.backlog
    );
    // Whatever didn't complete is accounted, not lost.
    assert_eq!(
        within + stats.shed + stats.expired + stats.failed + stats.backlog,
        total
    );
}

#[test]
fn transient_fault_retries_then_completes_and_retry_budget_fails() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 2, (6, 6), bits.len(), 9);
    let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let trace = EnergyTrace::new(vec![100.0; 4]);
    let requests = RequestTrace::new(vec![1, 0, 0, 0]);
    let mut rng = StdRng::seed_from_u64(5);
    let inputs = distinct_inputs(&mut rng, 1, &[1, 3, 6, 6]);
    let faults = FaultPlan::from_schedule([(0, FaultKind::TransientError)]);

    // One retry allowed: the step-0 failure re-queues with a 1-step
    // backoff, skips step 1, completes at step 2 with 2 attempts.
    let lenient = ResilienceConfig {
        max_retries: 1,
        retry_backoff_steps: 1,
        ..ResilienceConfig::default()
    };
    let (stats, outcomes) = simulate_serving_resilient(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &ServingConfig { max_batch: 2 },
        &lenient,
        &faults,
        &mut model,
        &inputs,
    )
    .unwrap();
    assert_eq!(outcomes[0].status, RequestStatus::Completed);
    assert_eq!(outcomes[0].served_at, Some(2));
    assert_eq!(outcomes[0].attempts, 2);
    assert_eq!(stats.retried, 1);
    assert_eq!(stats.failed, 0);

    // Zero retries: the same fault is fatal for the request, not the run.
    let strict = ResilienceConfig::default();
    let (stats, outcomes) = simulate_serving_resilient(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &ServingConfig { max_batch: 2 },
        &strict,
        &faults,
        &mut model,
        &inputs,
    )
    .unwrap();
    assert_eq!(outcomes[0].status, RequestStatus::Failed);
    assert_eq!(outcomes[0].attempts, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.retried, 0);
}

#[test]
fn stall_serves_nothing_but_queues_arrivals() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 2, (6, 6), bits.len(), 9);
    let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let trace = EnergyTrace::new(vec![100.0; 3]);
    let requests = RequestTrace::new(vec![2, 0, 0]);
    let mut rng = StdRng::seed_from_u64(6);
    let inputs = distinct_inputs(&mut rng, 1, &[1, 3, 6, 6]);
    let faults = FaultPlan::from_schedule([(0, FaultKind::Stall)]);
    let (stats, outcomes) = simulate_serving_resilient(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &ServingConfig { max_batch: 4 },
        &ResilienceConfig::default(),
        &faults,
        &mut model,
        &inputs,
    )
    .unwrap();
    assert_eq!(stats.stalled_steps, 1);
    assert_eq!(stats.schedule[0], None, "stalled step selects nothing");
    assert_eq!(
        outcomes[0].served_at,
        Some(1),
        "arrivals wait out the stall"
    );
    assert_eq!(outcomes[1].served_at, Some(1));
    assert_eq!(stats.dropped, 0, "a stall is not a budget drop");
}

#[test]
fn invalid_configs_are_typed_errors_not_panics() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 2, (6, 6), bits.len(), 9);
    let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let mut rng = StdRng::seed_from_u64(8);
    let inputs = distinct_inputs(&mut rng, 1, &[1, 3, 6, 6]);
    let mut run = |trace: EnergyTrace, requests: RequestTrace, res: ResilienceConfig| {
        simulate_serving_resilient(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &ServingConfig { max_batch: 2 },
            &res,
            &FaultPlan::none(),
            &mut model,
            &inputs,
        )
        .map(|_| ())
    };

    // Mismatched trace lengths.
    let err = run(
        EnergyTrace::new(vec![100.0; 2]),
        RequestTrace::uniform(1, 3),
        ResilienceConfig::default(),
    )
    .unwrap_err();
    assert!(matches!(err, ServingError::Config(_)), "{err}");

    // Inverted hysteresis band.
    let err = run(
        EnergyTrace::new(vec![100.0; 2]),
        RequestTrace::uniform(1, 2),
        ResilienceConfig {
            degradation: Some(DegradationConfig {
                backlog_high: 2,
                backlog_low: 5,
                recovery_window: 1,
            }),
            ..ResilienceConfig::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, ServingError::Config(_)), "{err}");

    // Report whose bit-widths the model never packed.
    let foreign = report_for(&BitWidthSet::new(vec![5, 6]).unwrap());
    let err = simulate_serving_resilient(
        &foreign,
        &EnergyTrace::new(vec![100.0; 2]),
        &RequestTrace::uniform(1, 2),
        Policy::Greedy,
        &SimulationConfig::default(),
        &ServingConfig { max_batch: 2 },
        &ResilienceConfig::default(),
        &FaultPlan::none(),
        &mut model,
        &inputs,
    )
    .unwrap_err();
    assert!(matches!(err, ServingError::Infer(_)), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn resilient_queue_invariants_hold_under_random_chaos(
        seed in 0u64..1_000_000,
        steps in 4usize..24,
        max_batch in 1usize..5,
        deadline in prop::sample::select(vec![-1isize, 0, 2, 5]),
        cap in prop::sample::select(vec![-1isize, 3, 10]),
        max_retries in 0usize..3,
        backoff in 0usize..3,
        degrade in prop::sample::select(vec![0usize, 1]),
        window in 1usize..4,
    ) {
        use rand::Rng;
        let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
        let net = models::small_cnn(2, 2, (6, 6), bits.len(), 3);
        let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        let report = report_for(&bits);
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets: Vec<f64> = (0..steps)
            .map(|_| [5.0, 11.0, 21.0, 31.0][rng.gen_range(0..4usize)])
            .collect();
        let arrivals: Vec<usize> = (0..steps).map(|_| rng.gen_range(0..6usize)).collect();
        let trace = EnergyTrace::new(budgets);
        let requests = RequestTrace::new(arrivals);
        let total = requests.total();
        let input = init::uniform(&mut rng, &[1, 3, 6, 6], -1.0, 1.0);
        let faults = FaultPlan::seeded(seed ^ 0xFA17, steps, FaultRates {
            stall: 0.1,
            transient: 0.1,
            panic: 0.05,
        });
        let resilience = ResilienceConfig {
            deadline_steps: usize::try_from(deadline).ok(),
            max_queue_depth: usize::try_from(cap).ok(),
            max_retries,
            retry_backoff_steps: backoff,
            step_time_s: Some(3e-3),
            degradation: (degrade == 1).then_some(DegradationConfig {
                backlog_high: 4,
                backlog_low: 1,
                recovery_window: window,
            }),
        };
        let (stats, outcomes) = simulate_serving_resilient(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &ServingConfig { max_batch },
            &resilience,
            &faults,
            &mut model,
            std::slice::from_ref(&input),
        ).unwrap();

        // Conservation: stats and per-request statuses agree and partition
        // the arrivals.
        let count = |s: RequestStatus| outcomes.iter().filter(|o| o.status == s).count();
        prop_assert_eq!(outcomes.len(), total);
        prop_assert_eq!(count(RequestStatus::Completed), stats.completed);
        prop_assert_eq!(count(RequestStatus::CompletedDegraded), stats.completed_degraded);
        prop_assert_eq!(count(RequestStatus::Shed), stats.shed);
        prop_assert_eq!(count(RequestStatus::Expired), stats.expired);
        prop_assert_eq!(count(RequestStatus::Failed), stats.failed);
        prop_assert_eq!(count(RequestStatus::Pending), stats.backlog);
        prop_assert_eq!(
            stats.completed + stats.completed_degraded + stats.shed + stats.expired
                + stats.failed + stats.backlog,
            total
        );

        // No completed request exceeds its deadline; serves are causal.
        for (r, o) in outcomes.iter().enumerate() {
            if let Some(t) = o.served_at {
                prop_assert!(t >= o.arrived_at, "request {} served before arrival", r);
                if let Some(d) = o.deadline {
                    prop_assert!(t <= d, "request {} served at {} past deadline {}", r, t, d);
                }
                prop_assert!(o.output.is_some());
            }
            // Retry budget: attempts never exceed 1 + max_retries.
            prop_assert!(o.attempts <= 1 + max_retries, "request {} attempts", r);
        }

        // Controller oscillation bound: consecutive transitions are at
        // least one recovery window apart.
        for pair in stats.degradation_events.windows(2) {
            prop_assert!(
                pair[1].0 - pair[0].0 >= window,
                "transitions at {} and {} violate window {}",
                pair[0].0, pair[1].0, window
            );
        }
        if resilience.degradation.is_none() {
            prop_assert!(stats.degradation_events.is_empty());
            prop_assert_eq!(stats.completed_degraded, 0);
        }

        // Fault accounting: injections counted, stalls select nothing.
        prop_assert_eq!(stats.faults_injected, faults.count_before(steps));
        let stall_count = faults.iter()
            .filter(|&(t, k)| t < steps && k == FaultKind::Stall)
            .count();
        prop_assert_eq!(stats.stalled_steps, stall_count);

        // Energy reconciles: per completed request at its serving point,
        // plus nothing else (switching is free here).
        let inference: f64 = outcomes
            .iter()
            .filter(|o| o.served_at.is_some())
            .filter_map(|o| o.bits)
            .map(|b| {
                report.points().iter().find(|p| p.bits.get() == b).unwrap().energy_pj
            })
            .sum();
        prop_assert!(
            (stats.energy_pj - inference).abs() < 1e-9 * (1.0 + inference.abs()),
            "energy {} vs recomputed {}",
            stats.energy_pj, inference
        );

        // time_in_bits covers exactly the scheduled (non-None) steps.
        let active = stats.schedule.iter().filter(|s| s.is_some()).count();
        let dwell: usize = stats.time_in_bits.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(dwell, active);
    }
}
