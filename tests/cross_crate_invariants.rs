//! Property-based integration tests of invariants that span crates:
//! quantizers inside networks, mappings against the cost model, and the
//! training strategies over shared weights.

use instantnet_automapper::{evolve_layer, MapperConfig};
use instantnet_dataflow::{ConvDims, Mapping};
use instantnet_hwmodel::{evaluate_layer, workloads_from_specs, Device};
use instantnet_nn::{models, ForwardCtx, Module};
use instantnet_quant::{BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor, Var};
use instantnet_train::{PrecisionLadder, Strategy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random mapping that the cost model accepts must respect device
    /// capacities implicitly: energy and latency are finite and positive.
    #[test]
    fn legal_mappings_cost_finite(seed in 0u64..500, bits in prop::sample::select(vec![4u8, 8, 16])) {
        let dims = ConvDims::new(1, 32, 16, 8, 8, 3, 3, 1);
        let device = Device::eyeriss_like();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Mapping::random(&dims, &mut rng);
        if let Ok(c) = evaluate_layer(&dims, &m, &device, bits) {
            prop_assert!(c.energy_pj.is_finite() && c.energy_pj > 0.0);
            prop_assert!(c.latency_s.is_finite() && c.latency_s > 0.0);
            prop_assert!(c.pes_used <= device.pe_count);
        }
    }

    /// The evolutionary search never returns something worse than the
    /// always-legal fallback it is seeded with.
    #[test]
    fn automapper_never_regresses_fallback(seed in 0u64..50) {
        let dims = ConvDims::new(1, 16, 16, 8, 8, 3, 3, 1);
        let device = Device::eyeriss_like();
        let cfg = MapperConfig { max_evals: 120, seed, ..MapperConfig::default() };
        let found = evolve_layer(&dims, &device, 8, &cfg);
        let fallback = instantnet_hwmodel::baselines::outermost_mapping(&dims, false);
        let fb = evaluate_layer(&dims, &fallback, &device, 8).unwrap().edp();
        prop_assert!(found.cost.edp() <= fb);
    }

    /// Networks forward deterministically in eval mode at every bit-width.
    #[test]
    fn network_eval_deterministic(bit_index in 0usize..2) {
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let net = models::small_cnn(4, 5, (6, 6), bits.len(), 3);
        let mut rng = StdRng::seed_from_u64(9);
        let x = Var::constant(init::uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0));
        // Seed BN stats first.
        let mut tc = ForwardCtx::train(&bits, bit_index, Quantizer::Sbm);
        net.forward(&x, &mut tc);
        let mut e1 = ForwardCtx::eval(&bits, bit_index, Quantizer::Sbm);
        let mut e2 = ForwardCtx::eval(&bits, bit_index, Quantizer::Sbm);
        let a = net.forward(&x, &mut e1).value();
        let b = net.forward(&x, &mut e2).value();
        prop_assert_eq!(a, b);
    }

    /// Quantized forward at full precision equals the unquantized network:
    /// the 32-bit rung must be exactly the FP network.
    #[test]
    fn full_precision_rung_matches_identity_quantizer(seed in 0u64..20) {
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let net = models::small_cnn(4, 5, (6, 6), bits.len(), seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Var::constant(init::uniform(&mut rng, &[1, 3, 6, 6], -1.0, 1.0));
        let mut sbm = ForwardCtx::train(&bits, 1, Quantizer::Sbm);
        let mut idn = ForwardCtx::train(&bits, 1, Quantizer::Identity);
        let a = net.forward(&x, &mut sbm).value();
        let b = net.forward(&x, &mut idn).value();
        for (va, vb) in a.data().iter().zip(b.data()) {
            prop_assert!((va - vb).abs() < 1e-5);
        }
    }
}

#[test]
fn cdt_loss_gradient_matches_shared_weight_count() {
    // Every trainable parameter of a 3-rung SP-Net receives gradient from a
    // single CDT backward pass.
    let bits = BitWidthSet::new(vec![2, 4, 32]).unwrap();
    let net = models::small_cnn(4, 4, (6, 6), bits.len(), 5);
    let mut rng = StdRng::seed_from_u64(1);
    let x = Var::constant(init::uniform(&mut rng, &[2, 3, 6, 6], -1.0, 1.0));
    let ladder = PrecisionLadder::uniform(&bits);
    let loss = instantnet_train::strategy::batch_loss(
        &net,
        &x,
        &[0, 1],
        &ladder,
        Quantizer::Sbm,
        Strategy::cdt(),
    );
    loss.backward();
    for p in net.params() {
        assert!(p.var().grad().is_some(), "no grad for {}", p.name());
    }
}

#[test]
fn workload_macs_match_network_flops() {
    let net = models::resnet_cifar(2, 0.25, 10, (8, 8), 1, 0);
    let workloads = workloads_from_specs(&net.specs(), 1);
    let total_macs: u64 = workloads.iter().map(|w| w.macs()).sum();
    assert_eq!(2 * total_macs, net.flops());
}

#[test]
fn hardware_cost_scales_with_network_size() {
    let small = models::resnet_cifar(1, 0.125, 10, (8, 8), 1, 0);
    let large = models::resnet_cifar(3, 0.5, 10, (8, 8), 1, 0);
    let device = Device::eyeriss_like();
    let cfg = MapperConfig {
        max_evals: 60,
        ..MapperConfig::default()
    };
    let (_, cs) = instantnet_automapper::map_network(
        &workloads_from_specs(&small.specs(), 1),
        &device,
        8,
        &cfg,
    );
    let (_, cl) = instantnet_automapper::map_network(
        &workloads_from_specs(&large.specs(), 1),
        &device,
        8,
        &cfg,
    );
    assert!(cl.energy_pj > cs.energy_pj);
    assert!(cl.latency_s > cs.latency_s);
}

#[test]
fn switchable_bn_keeps_bit_widths_isolated() {
    // Training at one bit-width must not disturb another bit-width's BN
    // statistics (tensor equality of running stats before/after).
    let bits = BitWidthSet::new(vec![4, 32]).unwrap();
    let net = models::small_cnn(4, 4, (6, 6), bits.len(), 8);
    let mut rng = StdRng::seed_from_u64(2);
    let x = Var::constant(init::uniform(&mut rng, &[4, 3, 6, 6], -1.0, 1.0));
    // Seed both branches once.
    for i in 0..2 {
        let mut c = ForwardCtx::train(&bits, i, Quantizer::Sbm);
        net.forward(&x, &mut c);
    }
    let mut eval1 = ForwardCtx::eval(&bits, 1, Quantizer::Sbm);
    let before = net.forward(&x, &mut eval1).value();
    // Hammer branch 0 with more training passes.
    for _ in 0..3 {
        let mut c = ForwardCtx::train(&bits, 0, Quantizer::Sbm);
        net.forward(&x, &mut c);
    }
    let mut eval2 = ForwardCtx::eval(&bits, 1, Quantizer::Sbm);
    let after = net.forward(&x, &mut eval2).value();
    assert_eq!(before, after, "bit-width 32 BN stats must be untouched");
}

#[test]
fn tensor_quant_roundtrip_inside_conv() {
    // Quantizing weights to 16 bits changes a conv output by far less than
    // quantizing to 2 bits — cross-crate sanity of quantizer + conv.
    let mut rng = StdRng::seed_from_u64(3);
    let x = Var::constant(init::uniform(&mut rng, &[1, 3, 6, 6], -1.0, 1.0));
    let w = init::kaiming_uniform(&mut rng, &[4, 3, 3, 3]);
    let q = Quantizer::Sbm;
    let out = |wt: Tensor| {
        let wv = Var::constant(wt);
        instantnet_tensor::ops::conv2d(&x, &wv, 1, 1, 1).value()
    };
    let full = out(w.clone());
    let w16 = out(q.quantize_weights_tensor(&w, instantnet_quant::BitWidth::new(16)));
    let w2 = out(q.quantize_weights_tensor(&w, instantnet_quant::BitWidth::new(2)));
    let err16: f32 = full.sub(&w16).map(|v| v * v).mean();
    let err2: f32 = full.sub(&w2).map(|v| v * v).mean();
    assert!(err16 * 10.0 < err2, "err16 {err16} vs err2 {err2}");
}
