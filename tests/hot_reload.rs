//! Versioned-registry hot-reload contract.
//!
//! * **Degenerate identity**: a single-version registry with the canary
//!   off is bit-identical to the frozen-model entry points — wall-clock
//!   and sharded — at every `BitWidthSet::large_range()` bit-width and
//!   worker count. Versioning is strictly additive.
//! * **Zero-downtime reload**: a mid-traffic publish of an equivalent
//!   candidate completes the identical request set with zero requests
//!   lost to the swap and request-by-request bit-identical outputs;
//!   `RuntimeStats` records the reload and the per-generation split.
//! * **Corruption rejection**: a bit-flipped checkpoint-v3 candidate
//!   fails with `CheckpointError::Corrupt` at publish time, the stable
//!   version keeps serving untouched, and the refusal is counted.
//! * **Auto-rollback**: a seeded divergent candidate shadow-compares
//!   bit-exactly against stable, rolls back after `max_divergences`, and
//!   the run's outputs stay bit-identical to a never-reloaded run —
//!   shadow traffic is never client-visible.
//! * **Promotion**: an equivalent candidate survives its clean window
//!   and becomes stable (a reload), still bit-identical.
//! * **Conservation** (proptest): arrivals == completed +
//!   completed_degraded + shed + expired + failed + backlog across
//!   reload counts × worker counts × deadlines, no matter where the
//!   swaps land in real time.

use instantnet::registry::{CanaryConfig, ModelRegistry, PublishError};
use instantnet::resilience::RequestStatus;
use instantnet::runtime::{
    EnergyTrace, Policy, RequestTrace, RuntimeStats, ServingConfig, SimulationConfig,
};
use instantnet::sharding::{
    simulate_serving_sharded, simulate_serving_sharded_versioned, ShardConfig, ShardedOutcome,
};
use instantnet::wallclock::{
    serve_wallclock, serve_wallclock_registry, WallclockConfig, WallclockOutcome,
};
use instantnet::{faults::FaultPlan, DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_nn::{checkpoint, models};
use instantnet_quant::{BitWidth, BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Worker counts under test: the CI matrix pins one via
/// `INSTANTNET_WALLCLOCK_WORKERS`; locally the default sweeps three.
fn worker_counts() -> Vec<usize> {
    std::env::var("INSTANTNET_WALLCLOCK_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .map_or_else(|| vec![1, 2, 4], |w| vec![w])
}

fn point_for(bits: BitWidth, i: usize) -> OperatingPoint {
    let e = 10.0 * (i + 1) as f64;
    let l = 1e-3 * (i + 1) as f64;
    OperatingPoint {
        bits,
        accuracy: 0.5 + 0.05 * i as f32,
        energy_pj: e,
        latency_s: l,
        edp: e * l,
        fps: 1.0 / l,
    }
}

fn distinct_inputs(rng: &mut StdRng, count: usize, dims: &[usize]) -> Vec<Tensor> {
    (0..count)
        .map(|_| init::uniform(rng, dims, -1.0, 1.0))
        .collect()
}

/// A packed model over `bits` from the standard small CNN at `seed`.
/// Same seed ⇒ bit-identical weights ⇒ bit-identical outputs; the packed
/// tables are still distinct instances (a genuine reload, not a no-op).
fn packed(bits: &BitWidthSet, seed: u64) -> PackedModel {
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), seed);
    PackedModel::prepack(&net, bits, Quantizer::Sbm).unwrap()
}

/// Wall-clock conservation: every request accounted exactly once.
fn assert_conservation(stats: &RuntimeStats, outcomes: &[WallclockOutcome], total: usize) {
    assert_eq!(outcomes.len(), total, "one record per arrival");
    assert_eq!(
        stats.completed
            + stats.completed_degraded
            + stats.shed
            + stats.expired
            + stats.failed
            + stats.backlog,
        total,
        "conservation: every request accounted exactly once"
    );
    let count = |s: RequestStatus| outcomes.iter().filter(|o| o.status == s).count();
    assert_eq!(count(RequestStatus::Completed), stats.completed);
    assert_eq!(count(RequestStatus::Failed), stats.failed);
    assert_eq!(count(RequestStatus::Pending), stats.backlog);
}

fn outputs_bit_identical<A, B>(ctx: &str, a: &[A], b: &[B])
where
    A: OutputRecord,
    B: OutputRecord,
{
    assert_eq!(a.len(), b.len(), "{ctx}: same request set");
    for (id, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.bits_of(), y.bits_of(), "{ctx}: request {id} bits");
        assert_eq!(
            x.output_of().map(Tensor::data),
            y.output_of().map(Tensor::data),
            "{ctx}: request {id} output must be bit-identical"
        );
    }
}

/// The two outcome shapes expose their payloads the same way.
trait OutputRecord {
    fn bits_of(&self) -> Option<u8>;
    fn output_of(&self) -> Option<&Tensor>;
}
impl OutputRecord for WallclockOutcome {
    fn bits_of(&self) -> Option<u8> {
        self.bits
    }
    fn output_of(&self) -> Option<&Tensor> {
        self.output.as_ref()
    }
}
impl OutputRecord for ShardedOutcome {
    fn bits_of(&self) -> Option<u8> {
        self.bits
    }
    fn output_of(&self) -> Option<&Tensor> {
        self.output.as_ref()
    }
}

/// Degenerate identity, wall-clock: an explicit single-version registry
/// with `FaultPlan::none()` completes the same request set as
/// `serve_wallclock` with request-by-request bit-identical outputs, at
/// every `large_range()` bit-width and worker count — and reports the
/// run as one generation with no registry activity.
#[test]
fn degenerate_registry_bit_identical_to_serve_wallclock_all_bitwidths() {
    let bits = BitWidthSet::large_range();
    let model = packed(&bits, 11);
    let steps = 8;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::new((0..steps).map(|t| (t * 3 + 1) % 4).collect());
    let total = requests.total();
    let mut rng = StdRng::seed_from_u64(31);
    let inputs = distinct_inputs(&mut rng, 5, &[1, 3, 6, 6]);
    let cfg = SimulationConfig::default();

    for (i, &b) in bits.widths().iter().enumerate() {
        let report = DeploymentReport::new("twin", 1, vec![point_for(b, i)]);
        for workers in worker_counts() {
            let wall = WallclockConfig {
                workers,
                max_batch: 4,
                step_time: Duration::from_micros(200),
                ..WallclockConfig::default()
            };
            let (base_stats, base) = serve_wallclock(
                &report,
                &trace,
                &requests,
                Policy::Greedy,
                &cfg,
                &wall,
                &model,
                &inputs,
            )
            .unwrap();
            let registry = ModelRegistry::new(model.clone(), "v1");
            let (stats, outcomes) = serve_wallclock_registry(
                &report,
                &trace,
                &requests,
                Policy::Greedy,
                &cfg,
                &wall,
                &registry,
                &FaultPlan::none(),
                &inputs,
            )
            .unwrap();
            let ctx = format!("{b}-bit @ {workers} workers");
            assert_eq!(stats.completed, total, "{ctx}");
            assert_eq!(base_stats.completed, total, "{ctx}");
            assert_conservation(&stats, &outcomes, total);
            outputs_bit_identical(&ctx, &outcomes, &base);
            assert_eq!(
                (stats.reloads, stats.rollbacks, stats.canary_served),
                (0, 0, 0),
                "{ctx}: no registry activity in the degenerate run"
            );
            let batches: usize = stats.replicas.iter().map(|r| r.batches).sum();
            assert_eq!(
                stats.time_per_generation,
                vec![(1, batches)],
                "{ctx}: one generation served everything"
            );
            for r in &stats.replicas {
                assert_eq!(r.generation, 1, "{ctx}: workers end pinned to v1");
            }
        }
    }
}

/// Degenerate identity, sharded: the versioned path over a single-version
/// registry with a no-op hook reproduces `simulate_serving_sharded`
/// bit-for-bit — full stats equality, not just outputs — at every
/// `large_range()` bit-width.
#[test]
fn degenerate_registry_bit_identical_to_sharded_all_bitwidths() {
    let bits = BitWidthSet::large_range();
    let model = packed(&bits, 13);
    let steps = 10;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::new((0..steps).map(|t| (t * 2 + 1) % 5).collect());
    let mut rng = StdRng::seed_from_u64(37);
    let inputs = distinct_inputs(&mut rng, 6, &[1, 3, 6, 6]);
    let cfg = SimulationConfig::default();
    let serving = ServingConfig { max_batch: 3 };
    let shard = ShardConfig {
        replicas: 2,
        ..ShardConfig::default()
    };

    for (i, &b) in bits.widths().iter().enumerate() {
        let report = DeploymentReport::new("twin", 1, vec![point_for(b, i)]);
        let (base_stats, base) = simulate_serving_sharded(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &cfg,
            &serving,
            &shard,
            &FaultPlan::none(),
            &model,
            &inputs,
        )
        .unwrap();
        let registry = ModelRegistry::new(model.clone(), "v1");
        let (stats, outcomes) = simulate_serving_sharded_versioned(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &cfg,
            &serving,
            &shard,
            &FaultPlan::none(),
            &registry,
            &mut |_, _| {},
            &inputs,
        )
        .unwrap();
        assert_eq!(stats, base_stats, "{b}-bit: stats bit-identical");
        assert_eq!(outcomes, base, "{b}-bit: outcomes bit-identical");
        assert_eq!(stats.time_per_generation, vec![(1, steps)], "{b}-bit");
    }
}

/// Zero-downtime reload, deterministic (sharded): the hook publishes an
/// equivalent candidate at step 4; every replica adopts it at that step
/// boundary, no request is lost, the outputs stay bit-identical to the
/// never-reloaded run, and the stats split the run into two generations.
#[test]
fn sharded_mid_traffic_reload_is_lossless_and_bit_identical() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let model = packed(&bits, 21);
    let steps = 9;
    let publish_at = 4usize;
    let report = DeploymentReport::new("reload", 1, vec![point_for(bits.widths()[1], 0)]);
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::uniform(3, steps);
    let total = requests.total();
    let mut rng = StdRng::seed_from_u64(41);
    let inputs = distinct_inputs(&mut rng, 5, &[1, 3, 6, 6]);
    let cfg = SimulationConfig::default();
    let serving = ServingConfig { max_batch: 2 };
    let shard = ShardConfig {
        replicas: 2,
        ..ShardConfig::default()
    };

    let (_, base) = simulate_serving_sharded(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &cfg,
        &serving,
        &shard,
        &FaultPlan::none(),
        &model,
        &inputs,
    )
    .unwrap();

    let registry = ModelRegistry::new(model.clone(), "v1");
    let candidate = packed(&bits, 21); // same seed: equivalent weights, fresh tables
    assert!(
        !model.shares_packed_tables(&candidate),
        "the candidate is a genuine reload, not an alias"
    );
    let mut candidate = Some(candidate);
    let (stats, outcomes) = simulate_serving_sharded_versioned(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &cfg,
        &serving,
        &shard,
        &FaultPlan::none(),
        &registry,
        &mut |t, reg| {
            if t == publish_at {
                reg.publish(candidate.take().expect("published once"), "v2", None)
                    .unwrap();
            }
        },
        &inputs,
    )
    .unwrap();

    assert_eq!(stats.completed, total, "zero requests lost to the swap");
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.rollbacks, 0);
    assert_eq!(
        stats.time_per_generation,
        vec![(1, publish_at), (2, steps - publish_at)],
        "the swap landed exactly at the publish step"
    );
    for r in &stats.replicas {
        assert_eq!(r.generation, 2, "every replica adopted the new version");
    }
    outputs_bit_identical("reload", &outcomes, &base);
    assert_eq!(registry.current().label(), "v2");
    assert_eq!(registry.current().generation(), 2);
}

/// Corruption rejection at publish time: a bit-flipped checkpoint-v3
/// candidate fails with `CheckpointError::Corrupt` inside the serving
/// run's hook, the stable version keeps serving bit-identically, and the
/// refusal lands in `RuntimeStats::rejected_publishes`.
#[test]
fn corrupt_checkpoint_publish_is_rejected_and_stable_keeps_serving() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 23);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();

    let dir = std::env::temp_dir().join("instantnet-hot-reload-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt-candidate.inet");
    checkpoint::save(&net, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 6] ^= 0x10; // flip one payload bit: the section CRC must catch it
    std::fs::write(&path, &bytes).unwrap();

    let report = DeploymentReport::new("reject", 1, vec![point_for(bits.widths()[0], 0)]);
    let steps = 6;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::uniform(2, steps);
    let mut rng = StdRng::seed_from_u64(43);
    let inputs = distinct_inputs(&mut rng, 4, &[1, 3, 6, 6]);
    let cfg = SimulationConfig::default();
    let serving = ServingConfig { max_batch: 2 };
    let shard = ShardConfig::default();

    let (_, base) = simulate_serving_sharded(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &cfg,
        &serving,
        &shard,
        &FaultPlan::none(),
        &model,
        &inputs,
    )
    .unwrap();

    let registry = ModelRegistry::new(model, "v1");
    let epoch_before = registry.epoch();
    let (stats, outcomes) = simulate_serving_sharded_versioned(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &cfg,
        &serving,
        &shard,
        &FaultPlan::none(),
        &registry,
        &mut |t, reg| {
            if t == 2 {
                let err = reg
                    .publish_checkpoint(&net, &path, "corrupt", None)
                    .unwrap_err();
                match &err {
                    PublishError::Load(_) => {
                        let ck = err.checkpoint_error().expect("a checkpoint-layer failure");
                        assert!(
                            matches!(ck, checkpoint::CheckpointError::Corrupt(_)),
                            "the CRC must reject the flipped bit, got {ck:?}"
                        );
                    }
                    other => panic!("expected a load failure, got {other:?}"),
                }
            }
        },
        &inputs,
    )
    .unwrap();

    assert_eq!(stats.rejected_publishes, 1, "the refusal is counted");
    assert_eq!(stats.reloads, 0, "no swap happened");
    assert_eq!(registry.epoch(), epoch_before, "no epoch bump either");
    assert_eq!(registry.current().label(), "v1");
    assert_eq!(stats.time_per_generation, vec![(1, steps)]);
    outputs_bit_identical("reject", &outcomes, &base);
}

/// Auto-rollback, deterministic (sharded): a divergent-by-construction
/// candidate (different seed) canaries at fraction 1.0 with
/// `max_divergences: 1` — the first shadow-compared batch rolls it back,
/// and because canary traffic is shadow-only, every output of the run is
/// bit-identical to a never-reloaded run.
#[test]
fn divergent_canary_rolls_back_and_outputs_match_never_reloaded_run() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let model = packed(&bits, 29);
    let steps = 10;
    let report = DeploymentReport::new("canary", 1, vec![point_for(bits.widths()[1], 0)]);
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::uniform(2, steps);
    let total = requests.total();
    let mut rng = StdRng::seed_from_u64(53);
    let inputs = distinct_inputs(&mut rng, 5, &[1, 3, 6, 6]);
    let cfg = SimulationConfig::default();
    let serving = ServingConfig { max_batch: 2 };
    let shard = ShardConfig::default();

    let (_, base) = simulate_serving_sharded(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &cfg,
        &serving,
        &shard,
        &FaultPlan::none(),
        &model,
        &inputs,
    )
    .unwrap();

    let registry = ModelRegistry::new(model, "v1");
    let mut divergent = Some(packed(&bits, 777)); // different weights entirely
    let (stats, outcomes) = simulate_serving_sharded_versioned(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &cfg,
        &serving,
        &shard,
        &FaultPlan::none(),
        &registry,
        &mut |t, reg| {
            if t == 3 {
                reg.publish(
                    divergent.take().expect("published once"),
                    "bad",
                    Some(CanaryConfig {
                        fraction: 1.0,
                        max_divergences: 1,
                        ..CanaryConfig::default()
                    }),
                )
                .unwrap();
            }
        },
        &inputs,
    )
    .unwrap();

    assert_eq!(stats.completed, total, "no request lost to the canary");
    assert_eq!(stats.rollbacks, 1, "the divergent candidate rolled back");
    assert!(stats.divergences >= 1, "the shadow compare caught it");
    assert!(stats.canary_served >= 1);
    assert_eq!(stats.reloads, 0, "it never became stable");
    assert_eq!(
        stats.time_per_generation,
        vec![(1, steps)],
        "stable served the whole run"
    );
    assert!(registry.candidate().is_none(), "no canary left in flight");
    assert_eq!(registry.current().label(), "v1");
    outputs_bit_identical("canary", &outcomes, &base);
}

/// Promotion: an equivalent candidate survives its clean window at
/// fraction 1.0 and becomes stable — counted as a reload — while outputs
/// stay bit-identical throughout.
#[test]
fn clean_canary_promotes_to_stable() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let model = packed(&bits, 31);
    let steps = 12;
    let report = DeploymentReport::new("promote", 1, vec![point_for(bits.widths()[0], 0)]);
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::uniform(2, steps);
    let mut rng = StdRng::seed_from_u64(59);
    let inputs = distinct_inputs(&mut rng, 5, &[1, 3, 6, 6]);
    let cfg = SimulationConfig::default();
    let serving = ServingConfig { max_batch: 2 };
    let shard = ShardConfig::default();

    let (_, base) = simulate_serving_sharded(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &cfg,
        &serving,
        &shard,
        &FaultPlan::none(),
        &model,
        &inputs,
    )
    .unwrap();

    let registry = ModelRegistry::new(model, "v1");
    let mut candidate = Some(packed(&bits, 31)); // equivalent weights
    let (stats, outcomes) = simulate_serving_sharded_versioned(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &cfg,
        &serving,
        &shard,
        &FaultPlan::none(),
        &registry,
        &mut |t, reg| {
            if t == 2 {
                reg.publish(
                    candidate.take().expect("published once"),
                    "v2",
                    Some(CanaryConfig {
                        fraction: 1.0,
                        clean_window: 3,
                        ..CanaryConfig::default()
                    }),
                )
                .unwrap();
            }
        },
        &inputs,
    )
    .unwrap();

    assert_eq!(stats.reloads, 1, "promotion is a reload");
    assert_eq!(stats.rollbacks, 0);
    assert_eq!(
        stats.divergences, 0,
        "an equivalent candidate never diverges"
    );
    assert!(stats.canary_served >= 3, "the clean window was measured");
    assert_eq!(registry.current().label(), "v2");
    assert_eq!(registry.current().generation(), 2);
    let gens: Vec<u64> = stats.time_per_generation.iter().map(|&(g, _)| g).collect();
    assert_eq!(gens, vec![1, 2], "the run split across both generations");
    outputs_bit_identical("promote", &outcomes, &base);
}

/// The acceptance scenario, on the real wall clock: one run with two
/// mid-traffic publishes — a clean direct reload, then a seeded-divergent
/// canary — completes the identical request set with zero requests lost,
/// auto-rolls the divergent candidate back, and every output matches the
/// never-reloaded baseline bit-for-bit.
#[test]
fn wallclock_two_publishes_clean_then_divergent_rollback() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let model = packed(&bits, 61);
    let steps = 24;
    let step_us = 500u64;
    let report = DeploymentReport::new("accept", 1, vec![point_for(bits.widths()[1], 0)]);
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::uniform(2, steps);
    let total = requests.total();
    let mut rng = StdRng::seed_from_u64(67);
    let inputs = distinct_inputs(&mut rng, 6, &[1, 3, 6, 6]);
    let cfg = SimulationConfig::default();
    let wall = WallclockConfig {
        workers: 2,
        max_batch: 2,
        step_time: Duration::from_micros(step_us),
        ..WallclockConfig::default()
    };

    let (_, base) = serve_wallclock(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &cfg,
        &wall,
        &model,
        &inputs,
    )
    .unwrap();

    let registry = ModelRegistry::new(model.clone(), "v1");
    let clean = packed(&bits, 61); // equivalent weights, fresh tables
    let divergent = packed(&bits, 999); // different weights entirely

    let (stats, outcomes) = std::thread::scope(|s| {
        let reg = &registry;
        let publisher = s.spawn(move || {
            // Publish while traffic is flowing: the run spans
            // steps × step_us = 12ms of paced arrivals.
            std::thread::sleep(Duration::from_micros(2 * step_us));
            reg.publish(clean, "v2", None).unwrap();
            std::thread::sleep(Duration::from_micros(2 * step_us));
            reg.publish(
                divergent,
                "bad",
                Some(CanaryConfig {
                    fraction: 1.0,
                    max_divergences: 1,
                    ..CanaryConfig::default()
                }),
            )
            .unwrap();
        });
        let out = serve_wallclock_registry(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &cfg,
            &wall,
            reg,
            &FaultPlan::none(),
            &inputs,
        )
        .unwrap();
        publisher.join().expect("publisher never panics");
        out
    });

    // Unconditional invariants, however the timing fell: nothing lost,
    // and shadow traffic never reached a client.
    assert_eq!(stats.completed, total, "zero requests lost across 2 swaps");
    assert_conservation(&stats, &outcomes, total);
    outputs_bit_identical("accept", &outcomes, &base);

    // Both publishes landed mid-traffic (the run outlives the publisher
    // by construction), so the registry history is deterministic even
    // though the exact step each landed on is not.
    let m = registry.metrics();
    assert_eq!(m.publishes, 2);
    assert_eq!(m.reloads, 1, "the clean publish swapped stable");
    assert_eq!(
        m.rollbacks, 1,
        "the divergent canary rolled back (divergences={}, canary_served={})",
        m.divergences, m.canary_served
    );
    assert!(m.divergences >= 1);
    assert_eq!(registry.current().label(), "v2", "rollback restored v2");
    assert!(registry.candidate().is_none());
    assert_eq!(stats.reloads + stats.rollbacks, 2, "both recorded in stats");
    let gens: Vec<u64> = stats.time_per_generation.iter().map(|&(g, _)| g).collect();
    assert!(
        gens == vec![1, 2] || gens == vec![2],
        "batches landed on v1 then v2, got {gens:?}"
    );
}

/// Version-aware cache keys: with the content cache on and every request
/// carrying the *same* input, a mid-run publish of genuinely different
/// weights must never answer post-reload traffic from entries the old
/// generation computed. Post-reload outputs — including cache hits —
/// are bit-identical to the new version's forward, not the old one's.
#[test]
fn content_cache_never_serves_stale_outputs_across_reload() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let v1 = packed(&bits, 171);
    let v2 = packed(&bits, 172); // different seed: different weights
    let report = DeploymentReport::new("stale", 1, vec![point_for(bits.widths()[1], 0)]);
    let steps = 8;
    let publish_at = 4usize;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::uniform(2, steps);
    let total = requests.total();
    let mut rng = StdRng::seed_from_u64(173);
    // One input for the whole run: maximal cache-hit pressure.
    let inputs = distinct_inputs(&mut rng, 1, &[1, 3, 6, 6]);
    let idx = v1.bit_widths().index_of(bits.widths()[1]).unwrap();
    let expect_v1 = v1.forward_at(idx, &inputs[0]);
    let expect_v2 = v2.forward_at(idx, &inputs[0]);
    assert_ne!(
        expect_v1.data(),
        expect_v2.data(),
        "the reload must actually change the answer"
    );

    let registry = ModelRegistry::new(v1, "v1");
    let mut candidate = Some(v2);
    let (stats, outcomes) = simulate_serving_sharded_versioned(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &ServingConfig { max_batch: 2 },
        &ShardConfig {
            replicas: 2,
            cache: true,
            ..ShardConfig::default()
        },
        &FaultPlan::none(),
        &registry,
        &mut |t, reg| {
            if t == publish_at {
                reg.publish(candidate.take().expect("published once"), "v2", None)
                    .unwrap();
            }
        },
        &inputs,
    )
    .unwrap();

    assert_eq!(stats.completed, total);
    assert_eq!(stats.reloads, 1);
    assert!(
        stats.cache_hits > 0,
        "identical inputs must exercise the cache"
    );
    assert!(
        outcomes
            .iter()
            .any(|o| o.cached && o.served_at.is_some_and(|t| t >= publish_at)),
        "the post-reload phase must include cache hits for the test to bite"
    );
    for (i, o) in outcomes.iter().enumerate() {
        let served_at = o.served_at.expect("permissive run completes all");
        let expected = if served_at < publish_at {
            &expect_v1
        } else {
            &expect_v2
        };
        assert_eq!(
            o.output.as_ref().unwrap().data(),
            expected.data(),
            "request {i} (served at step {served_at}, cached={}) must come \
             from the generation in force, never a stale cache entry",
            o.cached
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation under arbitrary swap timing: N mid-traffic publishes
    /// of alternating equivalent / divergent-canary candidates × worker
    /// counts × deadlines never lose a request, and every served output
    /// stays bit-identical to the never-reloaded baseline.
    #[test]
    fn conservation_holds_across_reloads_workers_and_deadlines(
        reloads in 1usize..4,
        workers in prop::sample::select(vec![1usize, 2, 4]),
        deadline_flag in 0usize..2,
    ) {
        let bits = BitWidthSet::new(vec![4, 8]).unwrap();
        let model = packed(&bits, 71);
        let report = DeploymentReport::new("prop", 1, vec![point_for(bits.widths()[0], 0)]);
        let mut rng = StdRng::seed_from_u64(73);
        let inputs = distinct_inputs(&mut rng, 5, &[1, 3, 6, 6]);
        let cfg = SimulationConfig::default();
        let steps = 10;
        let step_us = 400u64;
        let trace = EnergyTrace::new(vec![100.0; steps]);
        let requests = RequestTrace::uniform(2, steps);
        let total = requests.total();
        let wall = WallclockConfig {
            workers,
            max_batch: 2,
            step_time: Duration::from_micros(step_us),
            deadline: (deadline_flag == 1).then(|| Duration::from_micros(step_us * 6)),
            ..WallclockConfig::default()
        };
        let (_, base) = serve_wallclock(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &cfg,
            &wall,
            &model,
            &inputs,
        )
        .unwrap();
        let registry = ModelRegistry::new(model.clone(), "v1");
        let (stats, outcomes) = std::thread::scope(|s| {
            let reg = &registry;
            let bits_ref = &bits;
            let publisher = s.spawn(move || {
                for k in 0..reloads {
                    std::thread::sleep(Duration::from_micros(2 * step_us));
                    if k % 2 == 0 {
                        // Equivalent weights: a clean direct swap.
                        reg.publish(packed(bits_ref, 71), format!("v{}", k + 2), None)
                            .unwrap();
                    } else {
                        // Divergent canary: shadow-only; rolls back on its
                        // own or is cleared below.
                        let _ = reg.publish(
                            packed(bits_ref, 1000 + k as u64),
                            format!("bad{k}"),
                            Some(CanaryConfig {
                                fraction: 1.0,
                                max_divergences: 1,
                                ..CanaryConfig::default()
                            }),
                        );
                    }
                }
                // A canary may still be in flight when traffic drains;
                // clear it so the registry ends on a stable version.
                reg.rollback();
            });
            let out = serve_wallclock_registry(
                &report,
                &trace,
                &requests,
                Policy::Greedy,
                &cfg,
                &wall,
                reg,
                &FaultPlan::none(),
                &inputs,
            )
            .unwrap();
            publisher.join().expect("publisher never panics");
            out
        });
        let ctx = format!("reloads={reloads} workers={workers} deadline={deadline_flag}");
        prop_assert_eq!(outcomes.len(), total, "{}", ctx);
        prop_assert_eq!(
            stats.completed
                + stats.completed_degraded
                + stats.shed
                + stats.expired
                + stats.failed
                + stats.backlog,
            total,
            "{}: conservation",
            ctx
        );
        // Served outputs are bit-identical to the baseline run —
        // equivalent stables and shadow-only canaries can't change a
        // client-visible byte. (Deadlined runs may serve a subset;
        // compare the requests both runs completed.)
        for (id, (w, b)) in outcomes.iter().zip(&base).enumerate() {
            if let (Some(x), Some(y)) = (&w.output, &b.output) {
                prop_assert_eq!(x.data(), y.data(), "{}: request {}", ctx, id);
            }
        }
        let gen_batches: usize = stats.time_per_generation.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(
            gen_batches,
            stats.replicas.iter().map(|r| r.batches).sum::<usize>(),
            "{}: every batch attributed to exactly one generation",
            ctx
        );
    }
}
