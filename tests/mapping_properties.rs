//! Property tests of the dataflow/hardware stack under randomized layer
//! shapes and mappings.

use instantnet_dataflow::{emit_loop_nest, mapping_from_text, mapping_to_text, ConvDims, Mapping};
use instantnet_hwmodel::{area_mm2, baselines, evaluate_layer, Device, Workload};
use instantnet_nn::shapes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_dims() -> impl Strategy<Value = ConvDims> {
    (
        1usize..3,  // n
        1usize..64, // k
        1usize..64, // c
        1usize..24, // y
        1usize..24, // x
        prop::sample::select(vec![1usize, 3, 5]),
        prop::sample::select(vec![1usize, 2]),
    )
        .prop_map(|(n, k, c, y, x, r, stride)| ConvDims::new(n, k, c, y, x, r, r, stride))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The legalizer always produces a mapping the device accepts, even on
    /// the deliberately tiny test device.
    #[test]
    fn legalize_always_yields_legal_mapping(dims in arb_dims(), seed in 0u64..1000) {
        let device = Device::tiny_test();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Mapping::random(&dims, &mut rng);
        let fixed = baselines::legalize(m, &dims, &device, 16);
        prop_assert!(fixed.covers(&dims));
        prop_assert!(evaluate_layer(&dims, &fixed, &device, 16).is_ok());
    }

    /// Padded iteration counts never undershoot the true MAC count, so the
    /// cost model can only over-estimate work, never silently drop it.
    #[test]
    fn padded_macs_cover_true_macs(dims in arb_dims(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Mapping::random(&dims, &mut rng);
        prop_assert!(m.padded_macs() >= dims.macs());
    }

    /// Emitted loop nests are syntactically balanced for any mapping.
    #[test]
    fn emitted_nests_are_balanced(dims in arb_dims(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Mapping::random(&dims, &mut rng);
        let listing = emit_loop_nest(&dims, &m);
        prop_assert_eq!(listing.matches('{').count(), listing.matches('}').count());
        prop_assert!(listing.contains("MAC"));
    }

    /// Energy is monotone in bit-width for a fixed legal mapping.
    #[test]
    fn energy_monotone_in_bits(dims in arb_dims()) {
        let device = Device::eyeriss_like();
        let m = baselines::outermost_mapping(&dims, false);
        let e4 = evaluate_layer(&dims, &m, &device, 4).unwrap().energy_pj;
        let e8 = evaluate_layer(&dims, &m, &device, 8).unwrap().energy_pj;
        let e16 = evaluate_layer(&dims, &m, &device, 16).unwrap().energy_pj;
        prop_assert!(e4 < e8);
        prop_assert!(e8 < e16);
    }

    /// Text serialization round-trips every random mapping exactly.
    #[test]
    fn serialization_roundtrips(dims in arb_dims(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Mapping::random(&dims, &mut rng);
        let back = mapping_from_text(&mapping_to_text(&m)).expect("parses");
        prop_assert_eq!(back, m);
    }

    /// Crossover children of covering parents always cover.
    #[test]
    fn crossover_children_cover(dims in arb_dims(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mapping::random(&dims, &mut rng);
        let b = Mapping::random(&dims, &mut rng);
        let c = a.crossover(&b, &mut rng);
        prop_assert!(c.covers(&dims));
    }

    /// The expert baselines stay legal across layer shapes and bit-widths.
    #[test]
    fn eyeriss_baseline_always_legal(dims in arb_dims(), bits in prop::sample::select(vec![4u8, 8, 16])) {
        let device = Device::eyeriss_like();
        let m = baselines::eyeriss_row_stationary(&dims, &device, bits);
        prop_assert!(evaluate_layer(&dims, &m, &device, bits).is_ok());
    }
}

#[test]
fn alexnet_workload_macs_total() {
    // Cross-checks Workload conversion against the single-tower (ungrouped)
    // AlexNet conv MAC count, ~1.07G for the five conv layers at batch 1.
    let total: u64 = shapes::alexnet_convs()
        .iter()
        .map(|s| Workload::from_spec(s, 1).macs())
        .sum();
    assert!(total > 900_000_000, "total {total}");
    assert!(total < 1_200_000_000, "total {total}");
}

#[test]
fn area_grows_with_array_size() {
    let small = Device::tiny_test();
    let big = Device::eyeriss_like();
    assert!(area_mm2(&big, 16) > area_mm2(&small, 16));
}

#[test]
fn magnet_templates_subset_of_free_space() {
    // Every MAGNet template is a valid loop order in the free space (i.e.
    // construction does not panic) and the template count is small — the
    // paper's criticism of template-based tools.
    let templates = baselines::magnet_templates();
    assert!(templates.len() <= 8);
}
