//! SIMD-backend parity contract of the packed inference engine.
//!
//! The `instantnet-infer` dispatch layer selects between the portable
//! scalar kernels and the AVX2 kernels at runtime; this suite pins the
//! non-negotiable invariant that the choice is **invisible**:
//!
//! * **Whole-model bit-identity**: `forward_batch_at` under the forced
//!   scalar backend equals the ambient (auto-dispatched) backend bit for
//!   bit, for every `BitWidthSet::large_range()` bit-width × both
//!   quantizers × batch sizes {1, 16} × 1 vs N threads — so every
//!   existing bit-identity guarantee (fake-quant parity, degenerate
//!   serving-path equivalence) transfers to the SIMD backend for free.
//! * **Fused parity**: the fused multiply-on-packed-codes kernels
//!   (`INSTANTNET_FUSED`, AVX2 `maddubs`/`madd`, NEON `smull`/`smlal`)
//!   equal the widen-then-multiply path and the scalar reference bit for
//!   bit — including adversarial shapes: every tail width cols ∈ {1..67}
//!   with saturation-edge codes (max-magnitude nibbles and activations).
//! * **Knob round-trip**: `INSTANTNET_SIMD=scalar|avx2|neon|garbage`
//!   resolves to the documented backend in a fresh process (subprocess
//!   self-exec, since the default is latched once per process).
//! * **Forced fallback**: `with_simd_backend(Scalar)` pins scalar even on
//!   AVX2 hosts, scoped and restored.
//! * **Proptest**: random (rows, cols, batch, bit-width, quantizer)
//!   linear and conv problems produce identical results under both
//!   backends at 1 vs 3 threads.

use instantnet_infer::{
    active_simd_backend, avx2_available, neon_available, with_fused_gemm, with_simd_backend,
    PackedModel, SimdBackend,
};
use instantnet_nn::layers::{QuantConv2d, QuantLinear};
use instantnet_nn::models;
use instantnet_nn::plan::PlanOp;
use instantnet_parallel::with_threads;
use instantnet_quant::{BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact comparison: the two backends must agree on every bit.
fn assert_bits_eq(a: &Tensor, b: &Tensor, ctx: &str) {
    assert_eq!(a.dims(), b.dims(), "{ctx}: dims differ");
    let (ab, bb): (Vec<u32>, Vec<u32>) = (
        a.data().iter().map(|v| v.to_bits()).collect(),
        b.data().iter().map(|v| v.to_bits()).collect(),
    );
    assert_eq!(ab, bb, "{ctx}: outputs differ bitwise");
}

#[test]
fn forward_batch_bit_identical_scalar_vs_dispatched_everywhere() {
    let bits = BitWidthSet::large_range();
    for q in [Quantizer::Sbm, Quantizer::Dorefa] {
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 31);
        let packed = PackedModel::prepack(&net, &bits, q).unwrap();
        let mut rng = StdRng::seed_from_u64(0xB17);
        for batch in [1usize, 16] {
            let x = init::uniform(&mut rng, &[batch, 3, 8, 8], -1.0, 1.0);
            for i in 0..bits.len() {
                for threads in [1usize, 4] {
                    let ambient = with_threads(threads, || packed.forward_batch_at(i, &x));
                    let scalar = with_simd_backend(SimdBackend::Scalar, || {
                        with_threads(threads, || packed.forward_batch_at(i, &x))
                    });
                    assert_bits_eq(
                        &ambient,
                        &scalar,
                        &format!(
                            "{q:?} @ {}b batch {batch} threads {threads}",
                            bits.widths()[i]
                        ),
                    );
                    // Fused kernels off: the widen-then-multiply path must
                    // also match, whatever backend is ambient.
                    let widen = with_fused_gemm(false, || {
                        with_threads(threads, || packed.forward_batch_at(i, &x))
                    });
                    assert_bits_eq(
                        &widen,
                        &scalar,
                        &format!(
                            "fused off: {q:?} @ {}b batch {batch} threads {threads}",
                            bits.widths()[i]
                        ),
                    );
                    if avx2_available() {
                        let avx2 = with_simd_backend(SimdBackend::Avx2, || {
                            with_threads(threads, || packed.forward_batch_at(i, &x))
                        });
                        assert_bits_eq(
                            &avx2,
                            &scalar,
                            &format!(
                                "forced avx2: {q:?} @ {}b batch {batch} threads {threads}",
                                bits.widths()[i]
                            ),
                        );
                    }
                    if neon_available() {
                        let neon = with_simd_backend(SimdBackend::Neon, || {
                            with_threads(threads, || packed.forward_batch_at(i, &x))
                        });
                        assert_bits_eq(
                            &neon,
                            &scalar,
                            &format!(
                                "forced neon: {q:?} @ {}b batch {batch} threads {threads}",
                                bits.widths()[i]
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn forced_scalar_overrides_dispatch_on_any_host() {
    let ambient = active_simd_backend();
    let inside = with_simd_backend(SimdBackend::Scalar, active_simd_backend);
    assert_eq!(inside, SimdBackend::Scalar, "forcing scalar must stick");
    assert_eq!(active_simd_backend(), ambient, "override must be scoped");
    if avx2_available() {
        let inside = with_simd_backend(SimdBackend::Avx2, active_simd_backend);
        assert_eq!(inside, SimdBackend::Avx2);
        assert_eq!(active_simd_backend(), ambient);
    }
}

/// Subprocess target for the env round-trip: prints the backend this
/// process latched from `INSTANTNET_SIMD` + detection. Runs as a trivial
/// self-check in normal suite runs.
#[test]
fn print_active_backend() {
    let b = active_simd_backend();
    println!("active-simd-backend={}", b.name());
    assert!(matches!(
        b,
        SimdBackend::Scalar | SimdBackend::Avx2 | SimdBackend::Neon
    ));
}

/// The `INSTANTNET_SIMD` knob is read once per process, so each value is
/// probed in a fresh subprocess running [`print_active_backend`].
#[test]
fn env_knob_round_trips_in_fresh_process() {
    let exe = std::env::current_exe().expect("test binary path");
    let backend_under = |env: &str| -> String {
        let out = std::process::Command::new(&exe)
            .args(["print_active_backend", "--exact", "--nocapture"])
            .env("INSTANTNET_SIMD", env)
            .output()
            .expect("self-exec");
        assert!(out.status.success(), "subprocess failed under {env:?}");
        // libtest may splice its own "test … ok" text around the marker,
        // so locate it by substring rather than line prefix.
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let at = stdout
            .find("active-simd-backend=")
            .unwrap_or_else(|| panic!("no backend marker under {env:?}: {stdout}"));
        stdout[at + "active-simd-backend=".len()..]
            .split_whitespace()
            .next()
            .expect("marker has a value")
            .to_string()
    };

    assert_eq!(backend_under("scalar"), "scalar", "scalar forces scalar");
    assert_eq!(backend_under("SCALAR"), "scalar", "case-insensitive");
    let detected = if avx2_available() {
        "avx2"
    } else if neon_available() {
        "neon"
    } else {
        "scalar"
    };
    assert_eq!(backend_under("avx2"), detected, "avx2 honors detection");
    let neon_expect = if neon_available() { "neon" } else { detected };
    assert_eq!(backend_under("neon"), neon_expect, "neon honors detection");
    assert_eq!(backend_under("auto"), detected, "auto means detect");
    assert_eq!(backend_under("bogus"), detected, "garbage means detect");
}

/// Adversarial kernel shapes through the public model path: single-layer
/// linear plans at every fused-tail width cols ∈ {1..67}, with weights
/// pinned to ±1 (quantizing to each grid's extreme codes — max-magnitude
/// nibbles under both quantizers) and inputs saturated to ±1 (extreme
/// activation codes). Fused, widen-then-multiply, and scalar paths must
/// agree bit for bit at batch {1, 16} × 1 vs 4 threads.
#[test]
fn adversarial_shapes_fused_widen_scalar_parity() {
    let bits = BitWidthSet::large_range();
    let outf = 5usize;
    for q in [Quantizer::Sbm, Quantizer::Dorefa] {
        for cols in 1usize..=67 {
            let weight = Tensor::from_vec(
                vec![outf, cols],
                (0..outf * cols)
                    .map(|e| if (e + e / cols) % 2 == 0 { 1.0 } else { -1.0 })
                    .collect(),
            );
            let plan = vec![PlanOp::Linear {
                name: "adv".into(),
                weight,
                bias: Tensor::zeros(&[outf]),
            }];
            let packed = PackedModel::from_plan(&plan, &bits, q).unwrap();
            for batch in [1usize, 16] {
                let x = Tensor::from_vec(
                    vec![batch, cols],
                    (0..batch * cols)
                        .map(|e| if e % 2 == 0 { 1.0 } else { -1.0 })
                        .collect(),
                );
                for i in 0..bits.len() {
                    for threads in [1usize, 4] {
                        let ctx = format!(
                            "adversarial {q:?} cols {cols} batch {batch} threads {threads} @ {}b",
                            bits.widths()[i]
                        );
                        let scalar = with_simd_backend(SimdBackend::Scalar, || {
                            with_threads(threads, || packed.forward_batch_at(i, &x))
                        });
                        let fused = with_fused_gemm(true, || {
                            with_threads(threads, || packed.forward_batch_at(i, &x))
                        });
                        assert_bits_eq(&fused, &scalar, &format!("fused: {ctx}"));
                        let widen = with_fused_gemm(false, || {
                            with_threads(threads, || packed.forward_batch_at(i, &x))
                        });
                        assert_bits_eq(&widen, &scalar, &format!("widen: {ctx}"));
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random linear problems: both backends, 1 vs 3 threads, all equal.
    #[test]
    fn random_linear_parity_both_backends(
        infeat in 1usize..40,
        outfeat in 1usize..24,
        batch in 1usize..8,
        bit_index in 0usize..5,
        q in prop::sample::select(vec![Quantizer::Sbm, Quantizer::Dorefa]),
    ) {
        let bits = BitWidthSet::large_range();
        let i = bit_index % bits.len();
        let mut rng = StdRng::seed_from_u64((infeat * 31 + outfeat * 7 + batch) as u64);
        let layer = QuantLinear::new(&mut rng, "fc", infeat, outfeat);
        let packed = PackedModel::prepack(&layer, &bits, q).unwrap();
        let x = init::uniform(&mut rng, &[batch, infeat], -1.1, 0.9);
        let base = with_simd_backend(SimdBackend::Scalar, || {
            with_threads(1, || packed.forward_batch_at(i, &x))
        });
        let runs = [
            with_simd_backend(SimdBackend::Scalar, || {
                with_threads(3, || packed.forward_batch_at(i, &x))
            }),
            with_threads(1, || packed.forward_batch_at(i, &x)),
            with_threads(3, || packed.forward_batch_at(i, &x)),
        ];
        for (r, y) in runs.iter().enumerate() {
            assert_bits_eq(y, &base, &format!(
                "linear {infeat}x{outfeat} batch {batch} {q:?} @ {}b run {r}",
                bits.widths()[i]
            ));
        }
    }

    /// Random conv problems through the same gauntlet (im2col + colsum
    /// paths, both storage decoders).
    #[test]
    fn random_conv_parity_both_backends(
        cin in 1usize..5,
        cout in 1usize..6,
        hw in 5usize..9,
        bit_index in 0usize..5,
        q in prop::sample::select(vec![Quantizer::Sbm, Quantizer::Dorefa]),
    ) {
        let bits = BitWidthSet::large_range();
        let i = bit_index % bits.len();
        let mut rng = StdRng::seed_from_u64((cin * 91 + cout * 13 + hw) as u64);
        let conv = QuantConv2d::new(&mut rng, "c", cin, cout, 3, 1, 1, 1, true);
        let packed = PackedModel::prepack(&conv, &bits, q).unwrap();
        let x = init::uniform(&mut rng, &[2, cin, hw, hw], -1.0, 1.0);
        let base = with_simd_backend(SimdBackend::Scalar, || {
            with_threads(1, || packed.forward_batch_at(i, &x))
        });
        let runs = [
            with_simd_backend(SimdBackend::Scalar, || {
                with_threads(3, || packed.forward_batch_at(i, &x))
            }),
            with_threads(1, || packed.forward_batch_at(i, &x)),
            with_threads(3, || packed.forward_batch_at(i, &x)),
        ];
        for (r, y) in runs.iter().enumerate() {
            assert_bits_eq(y, &base, &format!(
                "conv {cin}->{cout} {hw}x{hw} {q:?} @ {}b run {r}",
                bits.widths()[i]
            ));
        }
    }
}
