//! Determinism contract of the parallel execution layer: every parallelized
//! path — matmul row chunks, conv2d forward/backward batch loops, and the
//! AutoMapper's concurrent candidate evaluation — must produce bit-identical
//! results at 1 thread and at N threads.
//!
//! Sizes are chosen above the kernels' serial-fallback thresholds so the
//! forced-thread runs genuinely exercise the threaded code paths.

use instantnet_automapper::{evolve_layer, map_network, map_per_bitwidth, MapperConfig};
use instantnet_dataflow::ConvDims;
use instantnet_hwmodel::{Device, Workload};
use instantnet_parallel::with_threads;
use instantnet_tensor::{init, ops, Tensor, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Thread counts exercised against the serial baseline — deliberately not
/// divisors of the work sizes, so chunk boundaries land unevenly.
const THREADS: [usize; 3] = [2, 3, 7];

fn random_matrix(seed: u64, rows: usize, cols: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    init::uniform(&mut rng, &[rows, cols], -1.0, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Row-chunked matmul is bit-identical for every thread count
    /// (dimensions large enough to cross the parallel threshold).
    #[test]
    fn matmul_thread_count_invariant(seed in 0u64..1000, m in 65usize..90, n in 64usize..80) {
        let a = random_matrix(seed, m, 72);
        let b = random_matrix(seed ^ 0xABCD, 72, n);
        let serial = with_threads(1, || a.matmul(&b));
        for t in THREADS {
            let par = with_threads(t, || a.matmul(&b));
            prop_assert_eq!(serial.data(), par.data(), "matmul differs at {} threads", t);
        }
    }

    /// conv2d forward values are bit-identical for every thread count.
    #[test]
    fn conv2d_forward_thread_count_invariant(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Var::constant(init::uniform(&mut rng, &[4, 8, 14, 14], -1.0, 1.0));
        let w = Var::constant(init::kaiming_uniform(&mut rng, &[16, 8, 3, 3]));
        let serial = with_threads(1, || ops::conv2d(&x, &w, 1, 1, 1).value());
        for t in THREADS {
            let par = with_threads(t, || ops::conv2d(&x, &w, 1, 1, 1).value());
            prop_assert_eq!(serial.data(), par.data(), "conv2d forward differs at {} threads", t);
        }
    }

    /// conv2d gradients (both dx and dw, i.e. the full serially-reduced
    /// backward pass over cached forward columns) are bit-identical for
    /// every thread count.
    #[test]
    fn conv2d_backward_thread_count_invariant(seed in 0u64..1000) {
        let grads = |threads: usize| {
            with_threads(threads, || {
                let mut rng = StdRng::seed_from_u64(seed);
                let x = Var::leaf(init::uniform(&mut rng, &[4, 8, 14, 14], -1.0, 1.0), true);
                let w = Var::leaf(init::kaiming_uniform(&mut rng, &[16, 8, 3, 3]), true);
                let y = ops::conv2d(&x, &w, 1, 1, 1);
                y.sum().backward();
                (x.grad().expect("dx"), w.grad().expect("dw"))
            })
        };
        let (dx1, dw1) = grads(1);
        for t in THREADS {
            let (dxn, dwn) = grads(t);
            prop_assert_eq!(dx1.data(), dxn.data(), "dx differs at {} threads", t);
            prop_assert_eq!(dw1.data(), dwn.data(), "dw differs at {} threads", t);
        }
    }

    /// Grouped/depthwise conv keeps the invariant too (distinct per-group
    /// cached columns and weight transposes).
    #[test]
    fn grouped_conv2d_thread_count_invariant(seed in 0u64..1000) {
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut rng = StdRng::seed_from_u64(seed);
                let x = Var::leaf(init::uniform(&mut rng, &[2, 8, 12, 12], -1.0, 1.0), true);
                let w = Var::leaf(init::kaiming_uniform(&mut rng, &[8, 2, 3, 3]), true);
                let y = ops::conv2d(&x, &w, 1, 1, 4);
                let out = y.value();
                y.sum().backward();
                (out, x.grad().expect("dx"), w.grad().expect("dw"))
            })
        };
        let (y1, dx1, dw1) = run(1);
        for t in THREADS {
            let (yn, dxn, dwn) = run(t);
            prop_assert_eq!(y1.data(), yn.data(), "grouped forward differs at {} threads", t);
            prop_assert_eq!(dx1.data(), dxn.data(), "grouped dx differs at {} threads", t);
            prop_assert_eq!(dw1.data(), dwn.data(), "grouped dw differs at {} threads", t);
        }
    }

    /// The AutoMapper's batched candidate evaluation gives the same search
    /// trajectory (best mapping, EDP, eval count, full history) at any
    /// thread count: RNG mutation is serial, evaluation is pure.
    #[test]
    fn evolve_layer_thread_count_invariant(seed in 0u64..200) {
        let dims = ConvDims::new(1, 32, 16, 14, 14, 3, 3, 1);
        let device = Device::eyeriss_like();
        let cfg = MapperConfig { max_evals: 200, seed, ..MapperConfig::default() };
        let serial = with_threads(1, || evolve_layer(&dims, &device, 8, &cfg));
        for t in THREADS {
            let par = with_threads(t, || evolve_layer(&dims, &device, 8, &cfg));
            prop_assert_eq!(&serial.mapping, &par.mapping, "mapping differs at {} threads", t);
            prop_assert_eq!(serial.cost.edp(), par.cost.edp());
            prop_assert_eq!(serial.evals, par.evals);
            prop_assert_eq!(&serial.history, &par.history);
        }
    }
}

/// map_network fans out over (execution mode × layer) and map_per_bitwidth
/// over bit-widths; both must match the forced-serial result exactly.
#[test]
fn network_and_bitwidth_fanout_thread_count_invariant() {
    let workloads = vec![
        Workload {
            dims: ConvDims::new(1, 32, 16, 14, 14, 3, 3, 1),
            multiplicity: 1,
        },
        Workload {
            dims: ConvDims::new(1, 64, 32, 7, 7, 3, 3, 1),
            multiplicity: 1,
        },
    ];
    let device = Device::eyeriss_like();
    let cfg = MapperConfig {
        max_evals: 120,
        ..MapperConfig::default()
    };
    let (maps_serial, cost_serial) = with_threads(1, || map_network(&workloads, &device, 8, &cfg));
    let per_bits_serial = with_threads(1, || {
        map_per_bitwidth(&workloads, &device, &[4, 8, 16], &cfg)
    });
    for t in THREADS {
        let (maps_par, cost_par) = with_threads(t, || map_network(&workloads, &device, 8, &cfg));
        assert_eq!(maps_serial, maps_par, "map_network differs at {t} threads");
        assert_eq!(cost_serial.edp(), cost_par.edp());
        let per_bits_par = with_threads(t, || {
            map_per_bitwidth(&workloads, &device, &[4, 8, 16], &cfg)
        });
        assert_eq!(per_bits_serial.len(), per_bits_par.len());
        for (s, p) in per_bits_serial.iter().zip(&per_bits_par) {
            assert_eq!(s.0, p.0);
            assert_eq!(s.1, p.1, "per-bitwidth mappings differ at {t} threads");
            assert_eq!(s.2.edp(), p.2.edp());
        }
    }
}

/// End-to-end: one training step's updated parameters are bit-identical
/// under forced-serial and forced-parallel kernels (the TrainConfig
/// `threads` knob routes through the same layer).
#[test]
fn train_step_thread_count_invariant() {
    use instantnet_data::{Dataset, DatasetSpec};
    use instantnet_nn::{models, Module};
    use instantnet_quant::BitWidthSet;
    use instantnet_train::{PrecisionLadder, Strategy, TrainConfig, Trainer};

    let run = |threads: usize| {
        let ds = Dataset::generate(&DatasetSpec::tiny());
        let bits = BitWidthSet::new(vec![4, 32]).unwrap();
        let net = models::small_cnn(4, ds.num_classes(), (ds.hw(), ds.hw()), bits.len(), 7);
        let ladder = PrecisionLadder::uniform(&bits);
        let cfg = TrainConfig {
            epochs: 1,
            batch_size: 8,
            threads,
            ..TrainConfig::default()
        };
        let report = Trainer::new(cfg).train(&net, &ds, &ladder, Strategy::cdt());
        let params: Vec<Vec<f32>> = net
            .params()
            .iter()
            .map(|p| p.var().value().data().to_vec())
            .collect();
        (report.loss_curve, params)
    };
    let (loss1, params1) = run(1);
    let (loss4, params4) = run(4);
    assert_eq!(loss1, loss4, "loss curves diverge between 1 and 4 threads");
    assert_eq!(
        params1, params4,
        "trained parameters diverge between 1 and 4 threads"
    );
}
