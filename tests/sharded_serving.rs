//! Sharded serving contract.
//!
//! * **Strictly additive**: with 1 replica, round-robin dispatch, the
//!   cache off, and no faults, `simulate_serving_sharded` reproduces
//!   `simulate_serving_batched` bit-for-bit — outputs, schedule,
//!   switches, energy, and queueing stats — across
//!   `BitWidthSet::large_range()`, both dispatchers, both policies, and
//!   1 vs N threads.
//! * **Scaling**: on a burst trace, 4 replicas drain the same queue in a
//!   fraction of the steps one replica needs, with request-by-request
//!   bit-identical outputs.
//! * **Cache**: hits are bitwise equal to recomputing, charge no energy,
//!   and reconcile with the hit/miss counters.
//! * **Fault isolation**: a `FaultPlan` aimed at one replica leaves the
//!   other replicas' completions untouched.
//! * **Conservation** (proptest): completed + shed + expired + failed +
//!   backlog == arrivals across replicas × dispatchers × cache × faults,
//!   and the per-replica stats sum to the global ones.

use instantnet::faults::{FaultKind, FaultPlan, FaultRates};
use instantnet::resilience::{RequestStatus, ServingError};
use instantnet::runtime::{
    simulate_serving_batched, EnergyTrace, Policy, RequestTrace, ServingConfig, SimulationConfig,
};
use instantnet::sharding::{
    simulate_serving_sharded, DispatchPolicy, PinnedConfig, ShardConfig, ShardedOutcome,
};
use instantnet::{DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_nn::models;
use instantnet_parallel::with_threads;
use instantnet_quant::{BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [2, 3, 7];

/// One operating point per bit-width: energy 10·(i+1), latency 1ms·(i+1),
/// accuracy ascending — same shape as the resilient suite's report.
fn report_for(bits: &BitWidthSet) -> DeploymentReport {
    let points = bits
        .widths()
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            let e = 10.0 * (i + 1) as f64;
            let l = 1e-3 * (i + 1) as f64;
            OperatingPoint {
                bits: b,
                accuracy: 0.5 + 0.05 * i as f32,
                energy_pj: e,
                latency_s: l,
                edp: e * l,
                fps: 1.0 / l,
            }
        })
        .collect();
    DeploymentReport::new("test", 1, points)
}

/// A budget trace that sweeps every operating point and includes one
/// unaffordable (dropped) step.
fn sweeping_trace(n_points: usize, steps: usize) -> EnergyTrace {
    EnergyTrace::new(
        (0..steps)
            .map(|t| {
                if t == 1 {
                    5.0
                } else {
                    10.0 * ((t % n_points) + 1) as f64 + 1.0
                }
            })
            .collect(),
    )
}

fn distinct_inputs(rng: &mut StdRng, count: usize, dims: &[usize]) -> Vec<Tensor> {
    (0..count)
        .map(|_| init::uniform(rng, dims, -1.0, 1.0))
        .collect()
}

/// The total across per-replica stats must agree with the global stats,
/// and every request must be accounted exactly once.
fn assert_sharded_accounting(
    stats: &instantnet::runtime::RuntimeStats,
    outcomes: &[ShardedOutcome],
    total: usize,
    replicas: usize,
) {
    let count = |s: RequestStatus| outcomes.iter().filter(|o| o.status == s).count();
    assert_eq!(outcomes.len(), total, "one record per arrival");
    assert_eq!(count(RequestStatus::Completed), stats.completed);
    assert_eq!(
        count(RequestStatus::CompletedDegraded),
        0,
        "sharding never degrades"
    );
    assert_eq!(count(RequestStatus::Shed), stats.shed);
    assert_eq!(count(RequestStatus::Expired), stats.expired);
    assert_eq!(count(RequestStatus::Failed), stats.failed);
    assert_eq!(count(RequestStatus::Pending), stats.backlog);
    assert_eq!(
        stats.completed + stats.shed + stats.expired + stats.failed + stats.backlog,
        total,
        "conservation: every request accounted exactly once"
    );
    assert_eq!(stats.served_requests, stats.completed);
    assert_eq!(stats.replicas.len(), replicas);
    let sum = |f: &dyn Fn(&instantnet::sharding::ReplicaStats) -> usize| {
        stats.replicas.iter().map(f).sum::<usize>()
    };
    assert_eq!(sum(&|r| r.served), stats.completed, "replica served sums");
    assert_eq!(sum(&|r| r.backlog), stats.backlog, "replica backlog sums");
    assert_eq!(sum(&|r| r.cache_hits), stats.cache_hits, "replica hit sums");
}

#[test]
fn degenerate_sharded_bit_identical_to_batched_all_bitwidths_policies_threads() {
    let bits = BitWidthSet::large_range();
    let report = report_for(&bits);
    let steps = 2 * bits.len() + 2;
    let trace = sweeping_trace(bits.len(), steps);
    let arrivals: Vec<usize> = (0..steps).map(|t| (t * 7 + 3) % 5).collect();
    let requests = RequestTrace::new(arrivals);
    let mut rng = StdRng::seed_from_u64(23);
    let inputs = distinct_inputs(&mut rng, 3, &[1, 3, 8, 8]);
    let serving = ServingConfig { max_batch: 3 };
    let cfg = SimulationConfig {
        switch_cost_pj: 2.5,
    };

    for policy in [Policy::Greedy, Policy::Hysteresis { margin: 0.08 }] {
        for dispatch in [DispatchPolicy::RoundRobin, DispatchPolicy::LeastLoaded] {
            for threads in std::iter::once(1).chain(THREADS) {
                let net = models::small_cnn(4, 6, (8, 8), bits.len(), 17);
                let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
                let shard = ShardConfig {
                    dispatch,
                    ..ShardConfig::default()
                };
                let ((base_stats, base_outcomes), (sh_stats, sh_outcomes)) =
                    with_threads(threads, || {
                        let base = simulate_serving_batched(
                            &report, &trace, &requests, policy, &cfg, &serving, &mut model, &inputs,
                        );
                        let sh = simulate_serving_sharded(
                            &report,
                            &trace,
                            &requests,
                            policy,
                            &cfg,
                            &serving,
                            &shard,
                            &FaultPlan::none(),
                            &model,
                            &inputs,
                        )
                        .unwrap();
                        (base, sh)
                    });
                let ctx = format!("{policy:?} / {dispatch:?} @ {threads} threads");
                assert_eq!(sh_stats.schedule, base_stats.schedule, "{ctx}");
                assert_eq!(sh_stats.switches, base_stats.switches, "{ctx}");
                assert_eq!(sh_stats.dropped, base_stats.dropped, "{ctx}");
                assert_eq!(sh_stats.mean_accuracy, base_stats.mean_accuracy, "{ctx}");
                assert_eq!(sh_stats.energy_pj, base_stats.energy_pj, "{ctx}");
                assert_eq!(
                    sh_stats.switch_energy_pj, base_stats.switch_energy_pj,
                    "{ctx}"
                );
                assert_eq!(
                    sh_stats.served_requests, base_stats.served_requests,
                    "{ctx}"
                );
                assert_eq!(sh_stats.backlog, base_stats.backlog, "{ctx}");
                assert_eq!(
                    sh_stats.max_queue_depth, base_stats.max_queue_depth,
                    "{ctx}"
                );
                assert_eq!(
                    sh_stats.batch_histogram, base_stats.batch_histogram,
                    "{ctx}"
                );
                assert_eq!(sh_stats.wait_steps, base_stats.wait_steps, "{ctx}");
                assert_eq!(
                    sh_stats.mean_wait_steps, base_stats.mean_wait_steps,
                    "{ctx}"
                );
                assert_eq!(sh_stats.p99_wait_steps, base_stats.p99_wait_steps, "{ctx}");
                // Nothing shard-specific fires on the degenerate path.
                assert_eq!(sh_stats.cache_hits + sh_stats.cache_misses, 0, "{ctx}");
                assert_eq!(
                    sh_stats.shed + sh_stats.expired + sh_stats.failed + sh_stats.retried,
                    0,
                    "{ctx}"
                );
                assert_eq!(sh_stats.replicas.len(), 1, "{ctx}");
                assert_eq!(sh_stats.replicas[0].served, sh_stats.completed, "{ctx}");
                assert_eq!(sh_stats.replicas[0].faulted_batches, 0, "{ctx}");
                // Outputs are bitwise equal, request by request.
                assert_eq!(sh_outcomes.len(), base_outcomes.len(), "{ctx}");
                for (r, (a, b)) in sh_outcomes.iter().zip(&base_outcomes).enumerate() {
                    assert_eq!(a.served_at, b.served_at, "{ctx}: request {r}");
                    assert_eq!(a.bits, b.bits, "{ctx}: request {r}");
                    assert_eq!(
                        a.output.as_ref().map(Tensor::data),
                        b.output.as_ref().map(Tensor::data),
                        "{ctx}: request {r} output differs"
                    );
                    assert!(!a.cached, "{ctx}: request {r} cache is off");
                }
            }
        }
    }
}

#[test]
fn four_replicas_drain_a_burst_faster_with_identical_outputs() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 13);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let steps = 30;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let mut arrivals = vec![0usize; steps];
    arrivals[0] = 24;
    let requests = RequestTrace::new(arrivals);
    let mut rng = StdRng::seed_from_u64(31);
    let inputs = distinct_inputs(&mut rng, 6, &[1, 3, 6, 6]);
    let serving = ServingConfig { max_batch: 4 };

    let run = |replicas: usize, dispatch: DispatchPolicy| {
        simulate_serving_sharded(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &serving,
            &ShardConfig {
                replicas,
                dispatch,
                ..ShardConfig::default()
            },
            &FaultPlan::none(),
            &model,
            &inputs,
        )
        .unwrap()
    };
    let makespan = |outcomes: &[ShardedOutcome]| {
        1 + outcomes
            .iter()
            .map(|o| o.served_at.expect("burst fully drains"))
            .max()
            .unwrap()
    };

    for dispatch in [DispatchPolicy::RoundRobin, DispatchPolicy::LeastLoaded] {
        let (s1, o1) = run(1, dispatch);
        let (s4, o4) = run(4, dispatch);
        assert_eq!(s1.completed, 24);
        assert_eq!(s4.completed, 24);
        assert_sharded_accounting(&s4, &o4, 24, 4);
        // 24 requests at max_batch 4: one replica needs 6 serving steps,
        // four replicas (6 requests each) need 2.
        assert_eq!(makespan(&o1), 6, "{dispatch:?}");
        assert_eq!(makespan(&o4), 2, "{dispatch:?}");
        // Every replica pulled its share, concurrently.
        for (r, rs) in s4.replicas.iter().enumerate() {
            assert_eq!(rs.served, 6, "{dispatch:?}: replica {r}");
            assert_eq!(rs.batches, 2, "{dispatch:?}: replica {r}");
            assert!(rs.max_queue_depth >= 6, "{dispatch:?}: replica {r}");
        }
        // Which replica served a request is invisible in its output.
        for (r, (a, b)) in o1.iter().zip(&o4).enumerate() {
            assert_eq!(a.bits, b.bits, "{dispatch:?}: request {r}");
            assert_eq!(
                a.output.as_ref().map(Tensor::data),
                b.output.as_ref().map(Tensor::data),
                "{dispatch:?}: request {r} output differs across replica counts"
            );
        }
        // Same work, same energy — sharding changes when, not what.
        assert_eq!(s1.energy_pj, s4.energy_pj, "{dispatch:?}");
    }
}

#[test]
fn cache_hits_are_bit_identical_to_recompute_free_and_counted() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 19);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let steps = 12;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::new((0..steps).map(|t| usize::from(t < 9) * 2).collect());
    let mut rng = StdRng::seed_from_u64(47);
    // 3 distinct samples over 18 requests: heavy duplication, the cache's
    // best case (request r reuses inputs[r % 3]).
    let inputs = distinct_inputs(&mut rng, 3, &[1, 3, 6, 6]);
    let serving = ServingConfig { max_batch: 2 };
    let run = |cache: bool| {
        simulate_serving_sharded(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &serving,
            &ShardConfig {
                replicas: 2,
                cache,
                ..ShardConfig::default()
            },
            &FaultPlan::none(),
            &model,
            &inputs,
        )
        .unwrap()
    };

    let (cold_stats, cold) = run(false);
    let (warm_stats, warm) = run(true);
    assert_eq!(cold_stats.cache_hits + cold_stats.cache_misses, 0);
    assert!(warm_stats.cache_hits > 0, "duplicates must hit");
    assert_eq!(warm_stats.completed, 18);
    assert_eq!(cold_stats.completed, 18);
    assert_sharded_accounting(&warm_stats, &warm, 18, 2);

    // Every cached answer is bitwise the tensor a forward would produce:
    // compare against the cache-off run request by request (same serving
    // bits per step since the budget trace is flat).
    let mut hits = 0;
    for (r, (a, b)) in warm.iter().zip(&cold).enumerate() {
        assert_eq!(a.bits, b.bits, "request {r}");
        assert_eq!(
            a.output.as_ref().map(Tensor::data),
            b.output.as_ref().map(Tensor::data),
            "request {r}: cached output differs from recompute"
        );
        if a.cached {
            hits += 1;
            assert_eq!(a.attempts, 0, "request {r}: hits run no forward");
        }
    }
    assert_eq!(hits, warm_stats.cache_hits);
    // Hits charge no inference energy, so the warm run is strictly
    // cheaper by hits × the serving point's energy.
    let point_energy = report.points()[1].energy_pj; // flat budget → 8-bit
    let saved = warm_stats.cache_hits as f64 * point_energy;
    assert!(
        (cold_stats.energy_pj - warm_stats.energy_pj - saved).abs() < 1e-9,
        "energy saved {} != hits × point {}",
        cold_stats.energy_pj - warm_stats.energy_pj,
        saved
    );
}

#[test]
fn tiny_lru_cache_evicts_but_stays_bit_identical() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 19);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let steps = 14;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::new((0..steps).map(|t| usize::from(t < 10) * 2).collect());
    let mut rng = StdRng::seed_from_u64(61);
    // 4 distinct samples cycling over 20 requests against a 2-entry cache:
    // the working set never fits, so the LRU must evict continuously.
    let inputs = distinct_inputs(&mut rng, 4, &[1, 3, 6, 6]);
    let serving = ServingConfig { max_batch: 2 };
    let run = |cache: bool, cache_capacity: usize| {
        simulate_serving_sharded(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &serving,
            &ShardConfig {
                replicas: 2,
                cache,
                cache_capacity,
                ..ShardConfig::default()
            },
            &FaultPlan::none(),
            &model,
            &inputs,
        )
        .unwrap()
    };

    let (off_stats, off) = run(false, 1);
    let (tiny_stats, tiny) = run(true, 2);
    let (big_stats, _) = run(true, usize::MAX);

    // The tiny cache overflows and evicts; the generous cap never does
    // (and the cache-off run never touches the cache at all).
    assert!(tiny_stats.cache_evictions > 0, "2-entry cache must evict");
    assert_eq!(big_stats.cache_evictions, 0, "generous cap never evicts");
    assert_eq!(off_stats.cache_evictions, 0);
    assert!(
        big_stats.cache_hits >= tiny_stats.cache_hits,
        "evictions can only cost hits"
    );

    // Eviction costs recompute, never correctness: every request completes
    // with output bitwise equal to the cache-off run's.
    assert_eq!(tiny_stats.completed, 20);
    assert_sharded_accounting(&tiny_stats, &tiny, 20, 2);
    for (r, (a, b)) in tiny.iter().zip(&off).enumerate() {
        assert_eq!(a.bits, b.bits, "request {r}");
        assert_eq!(
            a.output.as_ref().map(Tensor::data),
            b.output.as_ref().map(Tensor::data),
            "request {r}: output under tiny LRU differs from recompute"
        );
    }

    // cache_capacity 0 with the cache on is a config error, not a panic.
    let err = simulate_serving_sharded(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &serving,
        &ShardConfig {
            cache: true,
            cache_capacity: 0,
            ..ShardConfig::default()
        },
        &FaultPlan::none(),
        &model,
        &inputs,
    )
    .unwrap_err();
    assert!(matches!(err, ServingError::Config(_)), "{err}");
}

#[test]
fn fault_on_one_replica_leaves_the_others_untouched() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 29);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let steps = 4;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let requests = RequestTrace::new(vec![6, 0, 0, 0]);
    let mut rng = StdRng::seed_from_u64(53);
    let inputs = distinct_inputs(&mut rng, 6, &[1, 3, 6, 6]);
    let serving = ServingConfig { max_batch: 2 };
    let run = |faults: &FaultPlan, max_retries: usize| {
        simulate_serving_sharded(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &serving,
            &ShardConfig {
                replicas: 3,
                max_retries,
                fault_replica: 1,
                ..ShardConfig::default()
            },
            faults,
            &model,
            &inputs,
        )
        .unwrap()
    };

    let (clean_stats, clean) = run(&FaultPlan::none(), 0);
    assert_eq!(clean_stats.completed, 6);

    for kind in [FaultKind::TransientError, FaultKind::ForwardPanic] {
        // Round-robin puts requests {0,3} on replica 0, {1,4} on 1,
        // {2,5} on 2; the step-0 fault must hit only {1,4}.
        let faults = FaultPlan::from_schedule([(0, kind)]);
        let (stats, outcomes) = run(&faults, 0);
        assert_sharded_accounting(&stats, &outcomes, 6, 3);
        assert_eq!(stats.failed, 2, "{kind:?}");
        assert_eq!(stats.completed, 4, "{kind:?}");
        assert_eq!(stats.replicas[1].faulted_batches, 1, "{kind:?}");
        for r in [0usize, 2] {
            assert_eq!(stats.replicas[r].faulted_batches, 0, "{kind:?}");
            assert_eq!(stats.replicas[r].served, 2, "{kind:?}");
        }
        for (r, (a, b)) in outcomes.iter().zip(&clean).enumerate() {
            if r % 3 == 1 {
                assert_eq!(a.status, RequestStatus::Failed, "{kind:?}: request {r}");
                assert_eq!(a.attempts, 1, "{kind:?}: request {r}");
            } else {
                // Bit-identical to the fault-free run: same step, same
                // output — the fault never crossed the replica boundary.
                assert_eq!(a.status, RequestStatus::Completed, "{kind:?}: request {r}");
                assert_eq!(a.served_at, b.served_at, "{kind:?}: request {r}");
                assert_eq!(
                    a.output.as_ref().map(Tensor::data),
                    b.output.as_ref().map(Tensor::data),
                    "{kind:?}: request {r}"
                );
            }
        }

        // With a retry budget the victims recover on the next step —
        // re-dispatched away from the replica that just faulted, onto
        // the least-loaded other queue (a tie here, so lowest index: 0).
        let (stats, outcomes) = run(&faults, 1);
        assert_eq!(stats.failed, 0, "{kind:?}");
        assert_eq!(stats.completed, 6, "{kind:?}");
        assert_eq!(stats.retried, 2, "{kind:?}");
        for r in [1usize, 4] {
            assert_eq!(outcomes[r].served_at, Some(1), "{kind:?}: request {r}");
            assert_eq!(outcomes[r].attempts, 2, "{kind:?}: request {r}");
            assert_eq!(outcomes[r].replica, Some(0), "{kind:?}: request {r}");
        }
    }

    // A stall idles only the target replica: its requests wait one step,
    // the other replicas' batches still land at step 0.
    let faults = FaultPlan::from_schedule([(0, FaultKind::Stall)]);
    let (stats, outcomes) = run(&faults, 0);
    assert_eq!(stats.stalled_steps, 1);
    assert_eq!(stats.completed, 6);
    assert!(
        stats.schedule[0].is_some(),
        "the fleet still selects and serves through a one-replica stall"
    );
    for (r, o) in outcomes.iter().enumerate() {
        let expect = if r % 3 == 1 { Some(1) } else { Some(0) };
        assert_eq!(o.served_at, expect, "request {r}");
    }
}

#[test]
fn pinned_replicas_route_by_deadline_slack_and_respect_the_budget() {
    let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 37);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits); // energies 10/20/30, latencies 1/2/3 ms
    let steps = 16;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let mut arrivals = vec![0usize; steps];
    arrivals[0] = 8;
    let requests = RequestTrace::new(arrivals);
    let mut rng = StdRng::seed_from_u64(61);
    let inputs = distinct_inputs(&mut rng, 8, &[1, 3, 6, 6]);
    // Replica 0 pinned to the 4-bit point (fast lane), replica 1 to the
    // 32-bit point (quality lane). Deadline 4 steps, urgent once slack
    // dips to 2.
    let shard = ShardConfig {
        replicas: 2,
        pinned: Some(PinnedConfig {
            point_indices: vec![0, 2],
            urgent_slack: 2,
        }),
        deadline_steps: Some(4),
        ..ShardConfig::default()
    };
    let (stats, outcomes) = simulate_serving_sharded(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &ServingConfig { max_batch: 1 },
        &shard,
        &FaultPlan::none(),
        &model,
        &inputs,
    )
    .unwrap();

    // Arrival i sees i requests already on the quality queue, projecting
    // slack 4 − i at max_batch 1: arrivals 0–1 keep the quality lane,
    // 2–7 divert to the fast lane.
    for (i, o) in outcomes.iter().enumerate() {
        let want = if i < 2 { 1 } else { 0 };
        assert_eq!(o.replica, Some(want), "request {i} routed wrong");
    }
    // Each lane serves at its pinned point — the request's bits depend on
    // where it was routed, not on the global pick.
    for o in &outcomes {
        if o.status == RequestStatus::Completed {
            let want = if o.replica == Some(1) { 32 } else { 4 };
            assert_eq!(o.bits, Some(want));
        }
    }
    // The quality lane's 2 requests and the fast lane's 6 all complete
    // within deadline (fast lane serves 1/step from step 0).
    assert_eq!(stats.completed + stats.expired, 8);
    assert_eq!(stats.replicas[1].served, 2);
    assert!(stats.replicas[0].served >= 5);
    assert_sharded_accounting(&stats, &outcomes, 8, 2);
    // Per-replica dwell shows the specialization.
    assert!(stats.replicas[0].time_in_bits.iter().all(|&(b, _)| b == 4));
    assert!(stats.replicas[1].time_in_bits.iter().all(|&(b, _)| b == 32));

    // Budget gating reuses the global selector: a step whose budget only
    // affords the 4-bit point silences the 32-bit lane. urgent_slack 3
    // makes the second arrival (projected slack 3 behind the first)
    // divert to the fast lane.
    let gated_shard = ShardConfig {
        pinned: Some(PinnedConfig {
            point_indices: vec![0, 2],
            urgent_slack: 3,
        }),
        ..shard.clone()
    };
    let mut budgets = vec![100.0; 4];
    budgets[0] = 15.0; // only the 10 pJ point fits
    let (gated_stats, gated) = simulate_serving_sharded(
        &report,
        &EnergyTrace::new(budgets),
        &RequestTrace::new(vec![2, 0, 0, 0]),
        Policy::Greedy,
        &SimulationConfig::default(),
        &ServingConfig { max_batch: 1 },
        &gated_shard,
        &FaultPlan::none(),
        &model,
        &inputs,
    )
    .unwrap();
    // Request 0 queues on the quality lane but can't be served at step 0
    // (30 pJ > 15); request 1 diverts fast and is served immediately.
    assert_eq!(gated[1].served_at, Some(0));
    assert_eq!(gated[1].bits, Some(4));
    assert_eq!(
        gated[0].served_at,
        Some(1),
        "quality lane resumes at 100 pJ"
    );
    assert_eq!(gated[0].bits, Some(32));
    assert_eq!(gated_stats.schedule[0], Some(4), "global pick under 15 pJ");
}

#[test]
fn invalid_shard_configs_are_typed_errors_not_panics() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 2, (6, 6), bits.len(), 9);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let mut rng = StdRng::seed_from_u64(8);
    let inputs = distinct_inputs(&mut rng, 1, &[1, 3, 6, 6]);
    let run = |shard: ShardConfig| {
        simulate_serving_sharded(
            &report,
            &EnergyTrace::new(vec![100.0; 2]),
            &RequestTrace::uniform(1, 2),
            Policy::Greedy,
            &SimulationConfig::default(),
            &ServingConfig { max_batch: 2 },
            &shard,
            &FaultPlan::none(),
            &model,
            &inputs,
        )
        .map(|_| ())
    };

    for bad in [
        // Zero replicas.
        ShardConfig {
            replicas: 0,
            ..ShardConfig::default()
        },
        // Fault target outside the fleet.
        ShardConfig {
            replicas: 2,
            fault_replica: 2,
            ..ShardConfig::default()
        },
        // Pinned list length mismatch.
        ShardConfig {
            replicas: 2,
            pinned: Some(PinnedConfig {
                point_indices: vec![0],
                urgent_slack: 0,
            }),
            deadline_steps: Some(3),
            ..ShardConfig::default()
        },
        // Pinned index out of the report's range.
        ShardConfig {
            replicas: 2,
            pinned: Some(PinnedConfig {
                point_indices: vec![0, 9],
                urgent_slack: 0,
            }),
            deadline_steps: Some(3),
            ..ShardConfig::default()
        },
        // Pinned without deadlines (slack undefined).
        ShardConfig {
            replicas: 2,
            pinned: Some(PinnedConfig {
                point_indices: vec![0, 1],
                urgent_slack: 0,
            }),
            ..ShardConfig::default()
        },
    ] {
        let err = run(bad).unwrap_err();
        assert!(matches!(err, ServingError::Config(_)), "{err}");
    }

    // Report whose bit-widths the model never packed: typed engine error,
    // caught before any replica spins up.
    let foreign = report_for(&BitWidthSet::new(vec![5, 6]).unwrap());
    let err = simulate_serving_sharded(
        &foreign,
        &EnergyTrace::new(vec![100.0; 2]),
        &RequestTrace::uniform(1, 2),
        Policy::Greedy,
        &SimulationConfig::default(),
        &ServingConfig { max_batch: 2 },
        &ShardConfig::default(),
        &FaultPlan::none(),
        &model,
        &inputs,
    )
    .unwrap_err();
    assert!(matches!(err, ServingError::Infer(_)), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_conservation_holds_across_replicas_dispatch_cache_faults(
        seed in 0u64..1_000_000,
        steps in 4usize..20,
        replicas in 1usize..5,
        max_batch in 1usize..4,
        least_loaded in 0usize..2,
        cache_flag in 0usize..2,
        deadline in prop::sample::select(vec![-1isize, 0, 2, 5]),
        cap in prop::sample::select(vec![-1isize, 3, 10]),
        max_retries in 0usize..3,
    ) {
        use rand::Rng;
        let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
        let net = models::small_cnn(2, 2, (6, 6), bits.len(), 3);
        let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        let report = report_for(&bits);
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets: Vec<f64> = (0..steps)
            .map(|_| [5.0, 11.0, 21.0, 31.0][rng.gen_range(0..4usize)])
            .collect();
        let arrivals: Vec<usize> = (0..steps).map(|_| rng.gen_range(0..6usize)).collect();
        let trace = EnergyTrace::new(budgets);
        let requests = RequestTrace::new(arrivals);
        let total = requests.total();
        let inputs = distinct_inputs(&mut rng, 2, &[1, 3, 6, 6]);
        let faults = FaultPlan::seeded(seed ^ 0x5A4D, steps, FaultRates {
            stall: 0.1,
            transient: 0.1,
            panic: 0.05,
        });
        let cache = cache_flag == 1;
        let shard = ShardConfig {
            replicas,
            dispatch: if least_loaded == 1 {
                DispatchPolicy::LeastLoaded
            } else {
                DispatchPolicy::RoundRobin
            },
            cache,
            // Alternate a cap tiny enough to force evictions with the
            // generous default, so conservation holds under LRU churn too.
            cache_capacity: if seed % 2 == 0 { 1 } else { 65_536 },
            pinned: None,
            deadline_steps: usize::try_from(deadline).ok(),
            max_queue_depth: usize::try_from(cap).ok(),
            max_retries,
            fault_replica: seed as usize % replicas,
            // Every third case steals, so conservation is exercised with
            // batches migrating between replica queues mid-run too.
            work_stealing: seed % 3 == 0,
        };
        let (stats, outcomes) = simulate_serving_sharded(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &ServingConfig { max_batch },
            &shard,
            &faults,
            &model,
            &inputs,
        ).unwrap();

        // Conservation: stats and per-request statuses agree and
        // partition the arrivals; per-replica stats sum to the global.
        let count = |s: RequestStatus| outcomes.iter().filter(|o| o.status == s).count();
        prop_assert_eq!(outcomes.len(), total);
        prop_assert_eq!(count(RequestStatus::Completed), stats.completed);
        prop_assert_eq!(count(RequestStatus::Shed), stats.shed);
        prop_assert_eq!(count(RequestStatus::Expired), stats.expired);
        prop_assert_eq!(count(RequestStatus::Failed), stats.failed);
        prop_assert_eq!(count(RequestStatus::Pending), stats.backlog);
        prop_assert_eq!(
            stats.completed + stats.shed + stats.expired + stats.failed + stats.backlog,
            total
        );
        prop_assert_eq!(stats.replicas.len(), replicas);
        prop_assert_eq!(
            stats.replicas.iter().map(|r| r.served).sum::<usize>(),
            stats.completed
        );
        prop_assert_eq!(
            stats.replicas.iter().map(|r| r.backlog).sum::<usize>(),
            stats.backlog
        );
        prop_assert_eq!(
            stats.replicas.iter().map(|r| r.cache_hits).sum::<usize>(),
            stats.cache_hits
        );
        if !cache {
            prop_assert_eq!(stats.cache_hits + stats.cache_misses, 0);
        }

        // Causality, deadlines, retry budgets, routing bookkeeping.
        for (r, o) in outcomes.iter().enumerate() {
            if let Some(t) = o.served_at {
                prop_assert!(t >= o.arrived_at, "request {} served before arrival", r);
                if let Some(d) = o.deadline {
                    prop_assert!(t <= d, "request {} served at {} past deadline {}", r, t, d);
                }
                prop_assert!(o.output.is_some());
                prop_assert!(o.replica.is_some());
                prop_assert!(o.replica.unwrap() < replicas);
            }
            if o.status == RequestStatus::Shed {
                prop_assert!(o.replica.is_none(), "request {} shed before dispatch", r);
            }
            prop_assert!(o.attempts <= 1 + max_retries, "request {} attempts", r);
            if o.cached {
                prop_assert!(cache, "request {} cached with the cache off", r);
                prop_assert_eq!(o.attempts, 0);
            }
        }

        // Faults stay on their target replica.
        prop_assert_eq!(stats.faults_injected, faults.count_before(steps));
        for (r, rs) in stats.replicas.iter().enumerate() {
            if r != shard.fault_replica {
                prop_assert_eq!(rs.faulted_batches, 0, "replica {} faulted", r);
            }
        }
        prop_assert!(
            stats.stalled_steps
                <= faults.count_kind_before(steps, FaultKind::Stall)
        );

        // Energy reconciles: forward-served requests charge their point,
        // cache hits charge nothing (switching is free here).
        let inference: f64 = outcomes
            .iter()
            .filter(|o| o.served_at.is_some() && !o.cached)
            .filter_map(|o| o.bits)
            .map(|b| {
                report.points().iter().find(|p| p.bits.get() == b).unwrap().energy_pj
            })
            .sum();
        prop_assert!(
            (stats.energy_pj - inference).abs() < 1e-9 * (1.0 + inference.abs()),
            "energy {} vs recomputed {}",
            stats.energy_pj, inference
        );
    }
}

/// Work-stealing: under a skewed load (pinned routing funnels every
/// arrival to the quality lane), the idle fast lane steals from the
/// deepest queue, the fleet drains faster, the backlog high-water mark
/// drops, and every stolen request is served at the thief's point with
/// an output bit-identical to a standalone forward at that bit-width.
#[test]
fn work_stealing_drains_a_skewed_queue_and_lowers_the_high_water_mark() {
    let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 41);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let steps = 40;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let mut arrivals = vec![0usize; steps];
    for a in arrivals.iter_mut().take(8) {
        *a = 3;
    }
    let requests = RequestTrace::new(arrivals);
    let total = requests.total();
    let mut rng = StdRng::seed_from_u64(73);
    let inputs = distinct_inputs(&mut rng, 6, &[1, 3, 6, 6]);
    // urgent_slack 0 with a distant deadline: no arrival ever diverts, so
    // the whole trace lands on the pinned quality lane (replica 1).
    let run = |work_stealing: bool| {
        simulate_serving_sharded(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &ServingConfig { max_batch: 2 },
            &ShardConfig {
                replicas: 2,
                pinned: Some(PinnedConfig {
                    point_indices: vec![0, 2],
                    urgent_slack: 0,
                }),
                deadline_steps: Some(100),
                work_stealing,
                ..ShardConfig::default()
            },
            &FaultPlan::none(),
            &model,
            &inputs,
        )
        .unwrap()
    };

    let (nosteal_stats, nosteal) = run(false);
    let (steal_stats, stolen) = run(true);

    // Stealing off: the fast lane idles while the quality lane eats the
    // whole burst alone, 2 per step against 3 arriving.
    assert_eq!(nosteal_stats.replicas[0].served, 0);
    assert_eq!(nosteal_stats.replicas[1].served, total);
    assert_sharded_accounting(&nosteal_stats, &nosteal, total, 2);

    // Stealing on: both lanes serve, everything still completes, and the
    // global queue high-water mark shrinks.
    assert_eq!(steal_stats.completed, total);
    assert!(
        steal_stats.replicas[0].served > 0,
        "the idle lane must steal work"
    );
    assert!(
        steal_stats.max_queue_depth < nosteal_stats.max_queue_depth,
        "stealing must lower the backlog high-water mark: {} vs {}",
        steal_stats.max_queue_depth,
        nosteal_stats.max_queue_depth
    );
    let last_served =
        |outcomes: &[ShardedOutcome]| outcomes.iter().filter_map(|o| o.served_at).max().unwrap();
    assert!(
        last_served(&stolen) < last_served(&nosteal),
        "the fleet must finish the burst in fewer steps: {} vs {}",
        last_served(&stolen),
        last_served(&nosteal)
    );
    assert_sharded_accounting(&steal_stats, &stolen, total, 2);

    // A stolen request is served at the thief's pinned point, and its
    // output is bit-identical to a standalone forward at that bit-width:
    // stealing changes placement and timing, never numerics.
    for (i, o) in stolen.iter().enumerate() {
        assert_eq!(o.status, RequestStatus::Completed, "request {i}");
        let b = o.bits.unwrap();
        let expect = if o.replica == Some(0) { 4 } else { 32 };
        assert_eq!(b, expect, "request {i} bits follow its serving lane");
        let idx = model.bit_widths().index_of(b.into()).unwrap();
        let reference = model.forward_at(idx, &inputs[i % inputs.len()]);
        assert_eq!(
            o.output.as_ref().unwrap().data(),
            reference.data(),
            "request {i} stolen output must be bit-identical"
        );
    }
}

/// Retry re-dispatch: under a seeded fault plan hammering one replica,
/// every request that survives a faulted batch is re-queued on a
/// *different* replica, so no retry ever lands back on the box that just
/// failed it.
#[test]
fn retries_redispatch_away_from_the_faulted_replica() {
    let bits = BitWidthSet::new(vec![4, 8]).unwrap();
    let net = models::small_cnn(2, 4, (6, 6), bits.len(), 53);
    let model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let steps = 48;
    let trace = EnergyTrace::new(vec![100.0; steps]);
    let mut arrivals = vec![0usize; steps];
    for a in arrivals.iter_mut().take(20) {
        *a = 2;
    }
    let requests = RequestTrace::new(arrivals);
    let total = requests.total();
    let mut rng = StdRng::seed_from_u64(97);
    let inputs = distinct_inputs(&mut rng, 5, &[1, 3, 6, 6]);
    let faults = FaultPlan::seeded(
        0xFEED,
        steps,
        FaultRates {
            stall: 0.0,
            transient: 0.35,
            panic: 0.15,
        },
    );
    let (stats, outcomes) = simulate_serving_sharded(
        &report,
        &trace,
        &requests,
        Policy::Greedy,
        &SimulationConfig::default(),
        &ServingConfig { max_batch: 2 },
        &ShardConfig {
            replicas: 3,
            fault_replica: 1,
            max_retries: 3,
            ..ShardConfig::default()
        },
        &faults,
        &model,
        &inputs,
    )
    .unwrap();

    assert_sharded_accounting(&stats, &outcomes, total, 3);
    assert!(
        stats.retried > 0,
        "the seeded plan must actually fault some replica-1 batches"
    );
    assert_eq!(
        stats.failed, 0,
        "a retry budget of 3 plus re-dispatch must recover every victim"
    );
    let mut redispatched = 0;
    for (i, o) in outcomes.iter().enumerate() {
        if o.attempts >= 2 {
            assert_ne!(
                o.replica,
                Some(1),
                "request {i} retried back onto the faulted replica"
            );
            redispatched += 1;
        }
    }
    assert!(redispatched > 0, "some requests must have been retried");
    // Faults fire only when the target replica actually serves a batch;
    // the other replicas must stay clean.
    assert!(stats.replicas[1].faulted_batches > 0);
    assert_eq!(stats.replicas[0].faulted_batches, 0);
    assert_eq!(stats.replicas[2].faulted_batches, 0);
}
