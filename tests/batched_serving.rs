//! Batched serving contract: request aggregation must be invisible to
//! individual requests, and the queue model must lose nothing.
//!
//! * **Bit-identity**: every [`RequestOutcome`] output of
//!   `simulate_serving_batched` equals — bitwise — a batch-of-one forward
//!   of the same input at the same bit-width, across
//!   `BitWidthSet::large_range()`, both quantizers, and 1 vs N threads.
//!   (Batched activation quantization is per sample and every accumulator
//!   tier is exact, so batch-mates cannot perturb each other.)
//! * **Per-request path equivalence**: with `max_batch = 1` and one
//!   arrival per step, the batched runtime reproduces the per-request
//!   `simulate_serving` schedule and outputs exactly.
//! * **Queue invariants** (proptest, random traffic × budgets × knobs):
//!   no request is lost, service is FIFO with wait times monotone in
//!   arrival order, the batch histogram and energy accounting reconcile
//!   with the outcomes, and backlog bounds hold.

use instantnet::runtime::{
    simulate_serving, simulate_serving_batched, EnergyTrace, Policy, RequestTrace, ServingConfig,
    SimulationConfig,
};
use instantnet::{DeploymentReport, OperatingPoint};
use instantnet_infer::PackedModel;
use instantnet_nn::layers::QuantConv2d;
use instantnet_nn::models;
use instantnet_parallel::with_threads;
use instantnet_quant::{BitWidth, BitWidthSet, Quantizer};
use instantnet_tensor::{init, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: [usize; 3] = [2, 3, 7];

/// One operating point per bit-width, energy 10·(i+1), so budgets select
/// any point deterministically.
fn report_for(bits: &BitWidthSet) -> DeploymentReport {
    let points = bits
        .widths()
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            let e = 10.0 * (i + 1) as f64;
            OperatingPoint {
                bits: b,
                accuracy: 0.5 + 0.05 * i as f32,
                energy_pj: e,
                latency_s: 1e-3,
                edp: e * 1e-3,
                fps: 1000.0,
            }
        })
        .collect();
    DeploymentReport::new("test", 1, points)
}

/// A budget trace that sweeps every operating point and includes one
/// unaffordable (dropped) step.
fn sweeping_trace(n_points: usize, steps: usize) -> EnergyTrace {
    EnergyTrace::new(
        (0..steps)
            .map(|t| {
                if t == 1 {
                    5.0 // below the cheapest point: dropped
                } else {
                    10.0 * ((t % n_points) + 1) as f64 + 1.0
                }
            })
            .collect(),
    )
}

fn distinct_inputs(rng: &mut StdRng, count: usize, dims: &[usize]) -> Vec<Tensor> {
    (0..count)
        .map(|_| init::uniform(rng, dims, -1.0, 1.0))
        .collect()
}

#[test]
fn batched_outputs_bit_identical_to_per_request_all_bitwidths_both_quantizers() {
    let bits = BitWidthSet::large_range();
    for q in [Quantizer::Sbm, Quantizer::Dorefa] {
        let net = models::small_cnn(4, 6, (8, 8), bits.len(), 17);
        let mut model = PackedModel::prepack(&net, &bits, q).unwrap();
        let report = report_for(&bits);
        let steps = 2 * bits.len() + 2;
        let trace = sweeping_trace(bits.len(), steps);
        let mut rng = StdRng::seed_from_u64(23);
        let arrivals: Vec<usize> = (0..steps).map(|t| (t * 7 + 3) % 5).collect();
        let requests = RequestTrace::new(arrivals);
        let inputs = distinct_inputs(&mut rng, 3, &[1, 3, 8, 8]);
        let (stats, outcomes) = simulate_serving_batched(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &SimulationConfig::default(),
            &ServingConfig { max_batch: 3 },
            &mut model,
            &inputs,
        );
        assert_eq!(outcomes.len(), requests.total(), "no request lost ({q:?})");
        // The sweep serves multiple bit-widths and aggregates real batches.
        let distinct_bits: std::collections::BTreeSet<u8> =
            outcomes.iter().filter_map(|o| o.bits).collect();
        assert!(
            distinct_bits.len() >= 3,
            "{q:?}: sweep served {distinct_bits:?}"
        );
        assert!(
            stats.batch_histogram[2..].iter().sum::<usize>() > 0,
            "{q:?}: no multi-request batch formed"
        );
        for (r, o) in outcomes.iter().enumerate() {
            let Some(b) = o.bits else { continue };
            let i = bits.index_of(BitWidth::new(b)).unwrap();
            let alone = model.forward_at(i, &inputs[r % inputs.len()]);
            assert_eq!(
                o.output.as_ref().unwrap().data(),
                alone.data(),
                "{q:?}: request {r} at {b} bits differs from solo forward"
            );
        }
    }
}

#[test]
fn max_batch_one_reproduces_per_request_serving() {
    let bits = BitWidthSet::large_range();
    let net = models::small_cnn(4, 6, (8, 8), bits.len(), 29);
    let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
    let report = report_for(&bits);
    let trace = sweeping_trace(bits.len(), 9);
    let mut rng = StdRng::seed_from_u64(31);
    let input = distinct_inputs(&mut rng, 1, &[1, 3, 8, 8]).remove(0);

    let (per_stats, per_outputs) = simulate_serving(
        &report,
        &trace,
        Policy::Greedy,
        &SimulationConfig::default(),
        &mut model,
        &input,
    );
    let (bat_stats, outcomes) = simulate_serving_batched(
        &report,
        &trace,
        &RequestTrace::uniform(1, trace.len()),
        Policy::Greedy,
        &SimulationConfig::default(),
        &ServingConfig { max_batch: 1 },
        &mut model,
        std::slice::from_ref(&input),
    );
    assert_eq!(bat_stats.schedule, per_stats.schedule);
    assert_eq!(bat_stats.switches, per_stats.switches);
    // Each step's served output matches the per-request path's bitwise;
    // the batched queue just re-times *which* arrival it hands it to.
    let mut served = outcomes
        .iter()
        .filter_map(|o| o.served_at.map(|t| (t, o.output.as_ref().unwrap())));
    for (t, y) in per_outputs
        .iter()
        .enumerate()
        .filter_map(|(t, y)| y.as_ref().map(|y| (t, y)))
    {
        let (bt, by) = served.next().expect("batched path served fewer steps");
        assert_eq!(bt, t, "serve step mismatch");
        assert_eq!(by.data(), y.data(), "step {t} output differs");
    }
    assert!(served.next().is_none(), "batched path served extra steps");
}

#[test]
fn batched_serving_deterministic_across_thread_counts() {
    let bits = BitWidthSet::large_range();
    let report = report_for(&bits);
    let trace = sweeping_trace(bits.len(), 8);
    let requests = RequestTrace::new(vec![4, 2, 0, 5, 1, 3, 2, 4]);
    let mut rng = StdRng::seed_from_u64(37);
    // 12×12 inputs push the conv kernels over the parallel threshold.
    let inputs = distinct_inputs(&mut rng, 4, &[1, 3, 12, 12]);
    let run = |threads: usize| {
        let net = models::small_cnn(4, 6, (12, 12), bits.len(), 43);
        let mut model = PackedModel::prepack(&net, &bits, Quantizer::Dorefa).unwrap();
        with_threads(threads, || {
            simulate_serving_batched(
                &report,
                &trace,
                &requests,
                Policy::Greedy,
                &SimulationConfig::default(),
                &ServingConfig { max_batch: 4 },
                &mut model,
                &inputs,
            )
        })
    };
    let (serial_stats, serial_outcomes) = run(1);
    for t in THREADS {
        let (stats, outcomes) = run(t);
        assert_eq!(stats, serial_stats, "stats differ at {t} threads");
        assert_eq!(outcomes.len(), serial_outcomes.len());
        for (r, (a, b)) in outcomes.iter().zip(&serial_outcomes).enumerate() {
            assert_eq!(
                a.output.as_ref().map(Tensor::data),
                b.output.as_ref().map(Tensor::data),
                "request {r} differs at {t} threads"
            );
        }
    }
}

#[test]
fn forward_batch_matches_per_sample_forward_including_depthwise() {
    let bits = BitWidthSet::large_range();
    let mut rng = StdRng::seed_from_u64(53);
    // A depthwise layer (direct-tap fast path) and a standard CNN (im2col
    // GEMM path, all storage tiers).
    let dw = QuantConv2d::new(&mut rng, "dw", 6, 6, 3, 1, 1, 6, true);
    let cnn = models::small_cnn(4, 6, (10, 10), bits.len(), 61);
    for q in [Quantizer::Sbm, Quantizer::Dorefa] {
        for (name, model, dims) in [
            (
                "depthwise",
                PackedModel::prepack(&dw, &bits, q).unwrap(),
                [4usize, 6, 10, 10],
            ),
            (
                "small_cnn",
                PackedModel::prepack(&cnn, &bits, q).unwrap(),
                [4, 3, 10, 10],
            ),
        ] {
            let x = init::uniform(&mut rng, &dims, -1.0, 1.0);
            let sample_len = x.len() / dims[0];
            for i in 0..bits.len() {
                let batched = model.forward_batch_at(i, &x);
                let out_len = batched.len() / dims[0];
                for j in 0..dims[0] {
                    let mut sd = x.dims().to_vec();
                    sd[0] = 1;
                    let xj = Tensor::from_vec(
                        sd,
                        x.data()[j * sample_len..(j + 1) * sample_len].to_vec(),
                    );
                    let solo = model.forward_at(i, &xj);
                    assert_eq!(
                        &batched.data()[j * out_len..(j + 1) * out_len],
                        solo.data(),
                        "{name} {q:?} @ {} bits, sample {j}",
                        bits.widths()[i]
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn queue_invariants_hold_under_random_traffic(
        seed in 0u64..1_000_000,
        steps in 1usize..12,
        max_batch in 1usize..5,
        switch_cost in prop::sample::select(vec![0.0f64, 2.5]),
    ) {
        use rand::Rng;
        let bits = BitWidthSet::new(vec![4, 8, 32]).unwrap();
        let net = models::small_cnn(2, 2, (6, 6), bits.len(), 3);
        let mut model = PackedModel::prepack(&net, &bits, Quantizer::Sbm).unwrap();
        let report = report_for(&bits);
        let mut rng = StdRng::seed_from_u64(seed);
        let budgets: Vec<f64> = (0..steps)
            .map(|_| [5.0, 11.0, 21.0, 31.0][rng.gen_range(0..4usize)])
            .collect();
        let arrivals: Vec<usize> = (0..steps).map(|_| rng.gen_range(0..5usize)).collect();
        let trace = EnergyTrace::new(budgets);
        let requests = RequestTrace::new(arrivals);
        let input = init::uniform(&mut rng, &[1, 3, 6, 6], -1.0, 1.0);
        let cfg = SimulationConfig { switch_cost_pj: switch_cost };
        let (stats, outcomes) = simulate_serving_batched(
            &report,
            &trace,
            &requests,
            Policy::Greedy,
            &cfg,
            &ServingConfig { max_batch },
            &mut model,
            std::slice::from_ref(&input),
        );

        // No request lost: every arrival is recorded, served + backlog
        // partitions them.
        prop_assert_eq!(outcomes.len(), requests.total());
        let served: Vec<_> = outcomes.iter().filter(|o| o.served_at.is_some()).collect();
        prop_assert_eq!(served.len(), stats.served_requests);
        prop_assert_eq!(stats.served_requests + stats.backlog, requests.total());
        prop_assert_eq!(stats.wait_steps.len(), stats.served_requests);
        prop_assert!(stats.max_queue_depth >= stats.backlog);

        // FIFO: serve steps are monotone in arrival order and nothing is
        // served before it arrives or on a dropped step; unserved requests
        // form a suffix of the arrival order.
        let mut prev = 0usize;
        let mut seen_unserved = false;
        for (r, o) in outcomes.iter().enumerate() {
            match o.served_at {
                Some(t) => {
                    prop_assert!(!seen_unserved, "request {r} served after an unserved one");
                    prop_assert!(t >= o.arrived_at);
                    prop_assert!(t >= prev, "serve steps must be monotone");
                    prev = t;
                    let sched = stats.schedule[t];
                    prop_assert_eq!(o.bits, sched, "bits must match the schedule");
                    prop_assert!(o.output.is_some());
                }
                None => {
                    seen_unserved = true;
                    prop_assert!(o.bits.is_none() && o.output.is_none());
                }
            }
        }
        // Wait times recompute from the outcomes (serve order = FIFO order).
        let waits: Vec<usize> = outcomes
            .iter()
            .filter_map(|o| o.served_at.map(|t| t - o.arrived_at))
            .collect();
        prop_assert_eq!(&waits, &stats.wait_steps);

        // Histogram: one bucket entry per budget-served step, request mass
        // equal to the served count, length fixed by max_batch.
        prop_assert_eq!(stats.batch_histogram.len(), max_batch + 1);
        let active_steps = stats.schedule.iter().filter(|s| s.is_some()).count();
        prop_assert_eq!(stats.batch_histogram.iter().sum::<usize>(), active_steps);
        let mass: usize = stats
            .batch_histogram
            .iter()
            .enumerate()
            .map(|(b, &n)| b * n)
            .sum();
        prop_assert_eq!(mass, stats.served_requests);

        // Energy reconciles with the outcomes: per-request inference energy
        // plus switch accounting.
        let inference: f64 = outcomes
            .iter()
            .filter_map(|o| o.bits)
            .map(|b| {
                report
                    .points()
                    .iter()
                    .find(|p| p.bits.get() == b)
                    .unwrap()
                    .energy_pj
            })
            .sum();
        let expect = inference + stats.switches as f64 * switch_cost;
        prop_assert!(
            (stats.energy_pj - expect).abs() < 1e-9 * (1.0 + expect.abs()),
            "energy {} vs recomputed {}",
            stats.energy_pj,
            expect
        );
        prop_assert_eq!(stats.switch_energy_pj, stats.switches as f64 * switch_cost);
    }
}
